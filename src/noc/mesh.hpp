// The 2D-mesh interconnect: routers, per-tile network interfaces, wiring,
// and the express fast-forward path for packets crossing an idle fabric.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/ring_buffer.hpp"
#include "common/types.hpp"
#include "fault/fault.hpp"
#include "noc/message.hpp"
#include "noc/router.hpp"
#include "sim/engine.hpp"

namespace glocks::noc {

/// Express fast-forward counters for the --perf layer. Every send is
/// eventually tallied exactly once, at resolution: `hits` when the
/// packet was delivered analytically without waking a single router,
/// `declined` when it had to take the hop-by-hop path from the start,
/// `materialized` when it was scheduled express but a later conflicting
/// send demoted it back into the physical fabric mid-flight.
struct ExpressPerf {
  std::uint64_t hits = 0;
  std::uint64_t declined = 0;
  std::uint64_t materialized = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + declined + materialized;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// The whole on-chip data network. One sim::Component: ticking the mesh
/// ticks every NIC and router in a fixed order.
///
/// Endpoints send with `send()` (unbounded NIC outbox, so callers never
/// handle backpressure) and receive through the per-tile sink registered
/// with `set_sink()`. Messages between an endpoint and itself are not
/// allowed here — the memory system short-circuits same-tile traffic,
/// matching the paper's observation that local L2 slice accesses produce
/// no network traffic.
///
/// Express fast-forwarding (NocConfig::express_routes): when a packet is
/// sent while the physical fabric is completely empty, its XY route is
/// rigid — injection, every switch traversal, and ejection each happen
/// at an analytically-known cycle — so instead of waking every router on
/// the path the mesh checks the route's resources against the other
/// in-progress express flights and, if none collide, schedules a single
/// wake at the computed arrival cycle. Per-hop TrafficStats are credited
/// in full at delivery (identical bytes/hops/packets; the counters are
/// only read end-of-run). The moment any send cannot be proven
/// conflict-free, every virtual flight is materialized back into the
/// router queues at exactly the position the hop-by-hop path would have
/// reached, and the fabric continues physically — so simulated timing
/// and arbitration stay bit-identical whether the path is taken or not.
/// See docs/simulation_model.md, "Message lifecycle, pooling, and the
/// express path".
class MeshFaultDomain;

class Mesh final : public sim::Component, public BoundaryStager {
 public:
  Mesh(std::uint32_t num_tiles, std::uint32_t width, NocConfig cfg);
  ~Mesh() override;

  std::uint32_t num_tiles() const {
    return static_cast<std::uint32_t>(nics_.size());
  }
  std::uint32_t width() const { return width_; }

  void set_sink(CoreId tile, Router::Sink sink);

  /// Queues `p` for injection at tile `p.src`. Never fails; the NIC holds
  /// packets until the router's local port has room. `now` is the current
  /// cycle at the caller (express timing is anchored to it; the hop-by-hop
  /// path ignores it).
  void send(Packet&& p, Cycle now);

  /// Builds a packet and queues it. `payload` may be null; `kind` tags it
  /// for the receiving endpoint.
  void send(CoreId src, CoreId dst, MsgClass cls, std::uint32_t size_bytes,
            Cycle now, void* payload = nullptr,
            PayloadKind kind = PayloadKind::kNone);

  /// Sharded execution support. With `num_shards` > 1, a send() made
  /// from a shard-wave worker thread is staged in a per-shard buffer
  /// instead of entering the fabric; the engine's barrier hooks call
  /// flush_staged() on the main thread, which replays every staged send
  /// in ascending sender-slot order — the order the serial scan would
  /// have issued them — so express decisions and router arbitration are
  /// bit-identical to the single-thread kernel. `tile_shard` maps each
  /// tile to its owning shard: express fast-forwarding declines any
  /// route that crosses a shard boundary (timing-neutral — the
  /// hop-by-hop path is always exact).
  ///
  /// With `window_capable`, the fabric itself is split into per-shard
  /// regions (the tile->shard map may be arbitrary — each region keeps
  /// its own ascending tile list) so the engine can run multi-cycle
  /// lookahead windows: each shard ticks its own tiles' NICs and
  /// routers on its local clock, output links whose neighbor lies in
  /// another shard stage
  /// their forwards with the mesh (BoundaryStager), and end_window()
  /// merges the staged flits deterministically — always before their
  /// ready cycles, so downstream arbitration bytes are unchanged.
  /// Requires the fault domain off and no live express flights (call
  /// materialize_expresses() first); express stays declined while the
  /// region plan is installed.
  void set_sharding(std::uint32_t num_shards,
                    std::vector<std::uint32_t> tile_shard,
                    bool window_capable = false);
  void flush_staged();

  /// Demotes every active express flight into the physical fabric
  /// (no-op when none are active); the window-capable install path must
  /// call this before region-sharding the fabric.
  void materialize_expresses(Cycle now) { materialize_all(now); }

  // -- Region-sharded (windowed) execution ------------------------------
  // The engine's window planner and per-shard window bodies drive these
  // through ShardHooks; see docs/simulation_model.md.
  /// Planner limits for a window starting at `now` (main thread).
  sim::MeshWindowLimits window_limits(Cycle now) const;
  /// Freezes boundary-FIFO bases and recomputes per-region loads; sends
  /// switch to the direct per-region path until end_window().
  void begin_window(Cycle start, Cycle end);
  /// One cycle of `shard`'s region: NIC drains then router ticks over
  /// its own tiles (called from that shard's worker thread).
  void tick_region(std::uint32_t shard, Cycle now);
  /// True when `shard`'s region holds packets (worker thread, own
  /// region only).
  bool region_busy(std::uint32_t shard) const {
    return !regions_.empty() && regions_[shard].load > 0;
  }
  /// Flushes staged boundary flits in deterministic order and folds
  /// per-region accounting; returns true when the fabric is still busy.
  bool end_window(Cycle end);

  bool boundary_can_accept(std::int32_t link, MsgClass cls) const override;
  void boundary_stage(std::int32_t link, Packet&& p, Cycle ready) override;

  /// Cross-shard sends staged by lockstep epochs and replayed at the
  /// barrier flush (--perf shard-exec block).
  std::uint64_t staged_sends() const { return staged_sends_; }
  /// Flits carried across a region boundary via the staging taps.
  std::uint64_t boundary_flits() const { return boundary_flits_; }
  /// Sends issued directly into a shard's own region inside windows.
  std::uint64_t windowed_sends() const { return windowed_sends_; }

  /// Per-tile busy-router tick counts (a router counted once per cycle
  /// it held packets when ticked). Host-side perf feeding the profile
  /// shard-map balancer and the SimPerf per-tile top-N; never
  /// serialized, so archives stay strategy-invariant.
  const std::vector<std::uint64_t>& tile_work() const { return tile_work_; }

  void tick(Cycle now) override;

  const TrafficStats& stats() const { return stats_; }
  TrafficStats& stats() { return stats_; }
  const ExpressPerf& express_perf() const { return xperf_; }

  /// True when no packet is anywhere in the network (for drain tests).
  bool idle() const { return in_flight_ == 0; }

  /// Arms the mesh fault domain (cfg.mesh must be enabled): registers
  /// two injector wires per directed link, guards every transfer, and
  /// points the routers at the domain's hooks. Express fast-forwarding
  /// is declined entirely while the domain is armed (faulted routes are
  /// not analytically rigid) and the mesh never sleeps, so scripted
  /// kills and retransmission timers fire on exact cycles. Call before
  /// the first tick.
  void enable_fault_domain(const FaultConfig& cfg);
  bool fault_domain_enabled() const { return fault_ != nullptr; }
  /// Closes the domain's ledger and returns its counters (domain must
  /// be armed).
  fault::FaultStats finalize_fault_stats();
  /// One-line dead-link list for SimError messages ("none"/"off").
  std::string fault_context() const;
  /// Multi-line mesh state dump for hang reports: per-router occupancy,
  /// NIC backlog, in-flight census, and (when armed) the fault domain's
  /// dead links and busy guards.
  std::string debug_dump() const;

  /// Minimal hop distance between two tiles.
  std::uint32_t hop_distance(CoreId a, CoreId b) const;

  /// Serializes the whole network: traffic/express counters, sequence
  /// counter, NIC outboxes, every router's queues, and the active
  /// express flights (kept virtual — saving must not perturb the
  /// continuing run, so flights are written as their analytic
  /// trajectories, payloads drained to portable form via `codec`).
  void save(ckpt::ArchiveWriter& a, const PayloadCodec& codec) const;
  void load(ckpt::ArchiveReader& a, const PayloadCodec& codec);

 private:
  /// One cross-thread send awaiting the barrier flush.
  struct Staged {
    std::uint32_t sender_slot;
    Packet pkt;
    Cycle now;
  };

  struct Nic {
    /// Per-class outboxes, so a burst in one class cannot head-of-line
    /// block another class at the injection point.
    std::array<common::RingBuffer<Packet>, kNumMsgClasses> outbox;
  };

  /// One express-scheduled packet. The whole trajectory is derivable:
  /// the packet sits in the source tile's local FIFO at cycle `inject`,
  /// is forwarded by the k-th router on its XY route at
  /// `inject + 1 + k * (router_latency + link_latency)`, and reaches the
  /// destination sink at `arrival`.
  struct Flight {
    Packet pkt;
    Cycle inject = 0;
    Cycle arrival = 0;
    std::uint32_t hops = 0;  ///< Manhattan distance (route has hops+1 switches)
  };

  /// The send path proper (seq assignment, express attempt, NIC outbox);
  /// send() forwards here directly except for staged cross-thread sends,
  /// which reach it via flush_staged().
  void send_now(Packet&& p, Cycle now);
  /// Direct windowed send from a shard worker into its own region: seq
  /// stamp, region load/census deltas, NIC outbox push. No wake — the
  /// engine re-syncs the coordinator slot at the window boundary.
  void send_windowed(std::uint32_t shard, Packet&& p);
  /// Stamps the per-source-tile sequence number. Every strategy (serial,
  /// lockstep flush, windowed) stamps the same seq on the same logical
  /// packet: tile T's k-th injection is strategy-invariant, so archives
  /// byte-match across shard counts and window lengths.
  void stamp_seq(Packet& p);
  /// Delivers every staged boundary flit into its downstream FIFO (link
  /// index, class, stage order — deterministic; within one FIFO stage
  /// order equals ready order). Main thread only.
  void flush_boundary();
  /// Folds per-region deltas (in-flight census, traffic stats, tick
  /// watermarks, send tallies) into the shared totals. Main thread only.
  void fold_regions();

  /// The cycle at which a packet handed to the mesh "now" would be
  /// injected by the NIC drain: the mesh's next tick.
  Cycle next_tick_at(Cycle now) const;
  /// True when the physical fabric (outboxes + router queues) is empty —
  /// the standing invariant while any express flight is active.
  bool fabric_empty() const { return in_flight_ == express_.size(); }

  /// Attempts to schedule `p` on the express path; on success takes
  /// ownership and arms the delivery wake. May materialize all active
  /// flights (and then return false) when a conflict is found.
  bool try_express(Packet& p, Cycle now);
  /// True if the candidate trajectory collides with any active flight
  /// (output-port reuse, same-cycle FIFO release, or queue overflow).
  bool route_conflicts(const Flight& cand) const;
  /// Walks a flight's XY route: fn(k, tile, in_dir, out_dir, fwd_cycle)
  /// for k = 0..hops, where fwd_cycle is when router `tile` forwards it.
  template <typename Fn>
  void walk_route(const Flight& f, Fn&& fn) const;

  /// Demotes every active flight into the router queues at exactly the
  /// occupancy the hop-by-hop path would show at the mesh's next tick,
  /// crediting the hops already performed. Called before any physical
  /// send can follow express traffic.
  void materialize_all(Cycle now);
  /// Delivers flights whose arrival cycle has been reached.
  void deliver_due_express(Cycle now);

  std::uint32_t width_;
  NocConfig cfg_;
  TrafficStats stats_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<Nic> nics_;
  /// The same in-flight-tracking sinks the routers hold; express
  /// delivery ejects through these without touching a router.
  std::vector<Router::Sink> sinks_;
  std::vector<Flight> express_;  ///< active flights, in send order
  ExpressPerf xperf_;
  /// Per-source-tile sequence streams (see stamp_seq); serialized.
  std::vector<std::uint64_t> tile_seq_;
  Cycle last_tick_ = kNoCycle;
  /// Packets anywhere in the network (NIC outboxes + router queues +
  /// express flights); while the physical part is zero the mesh sleeps
  /// and skipped cycles fold into catch_up().
  std::uint64_t in_flight_ = 0;
  // Scratch buffers for materialize/deliver (reused; no steady-state
  // allocation).
  struct Placement {
    std::uint32_t tile = 0;
    Dir in = Dir::kLocal;
    bool ejection = false;  ///< true: local_out_; false: input FIFO
    MsgClass cls = MsgClass::kRequest;
    Cycle ready = 0;
    std::size_t flight = 0;
  };
  std::vector<Placement> placements_;
  std::vector<std::size_t> due_;
  std::vector<Flight> delivering_;
  /// Sharded execution: per-shard staging buffers (each naturally in
  /// ascending sender-slot order) and the tile -> shard map feeding the
  /// express boundary rule. Inert while num_shards_ == 1.
  std::uint32_t num_shards_ = 1;
  std::vector<std::uint32_t> tile_shard_;
  std::vector<std::vector<Staged>> staged_;

  /// One flit staged at a region boundary, awaiting the window-edge (or
  /// lockstep end-of-tick) flush into the downstream FIFO.
  struct StagedFlit {
    Cycle ready = 0;
    Packet pkt;
  };
  /// The tiles owned by one shard (ascending ids — any ownership map,
  /// contiguous or not), plus the deltas its worker accumulates
  /// privately during a window (folded into the shared totals at the
  /// barrier so no counter is ever written concurrently).
  struct Region {
    std::vector<std::uint32_t> tiles;
    /// Packets resident in the region (router occupancy + NIC backlog);
    /// recomputed at begin_window, maintained during the window.
    std::uint64_t load = 0;
    std::int64_t in_flight_delta = 0;
    std::uint64_t sent = 0;        ///< windowed sends this window
    Cycle last_tick = kNoCycle;    ///< latest region tick (folds to max)
    TrafficStats stats;            ///< per-region bucket (rebind_stats)
  };
  /// One directed cross-region link: src tile forwards into dst tile's
  /// input port `in`. `base` freezes the per-class downstream FIFO depth
  /// at window start; in-window capacity checks use base + staged, which
  /// the planner's headroom clamp keeps strictly below the queue depth
  /// (so the tap never declines a forward the serial scan accepts).
  struct BoundaryLink {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    Dir in = Dir::kLocal;
    std::array<std::uint32_t, kNumMsgClasses> base{};
    std::array<std::vector<StagedFlit>, kNumMsgClasses> staged;
  };
  /// True while a window-capable region plan is installed; epoch_windowed_
  /// only inside a windowed epoch (between begin_window and end_window).
  bool window_mode_ = false;
  bool epoch_windowed_ = false;
  std::vector<Region> regions_;
  std::vector<BoundaryLink> blinks_;
  std::uint64_t staged_sends_ = 0;    ///< perf only; not serialized
  std::uint64_t boundary_flits_ = 0;  ///< perf only; not serialized
  std::uint64_t windowed_sends_ = 0;  ///< perf only; not serialized
  /// Busy-router ticks per tile (see tile_work()); perf only.
  std::vector<std::uint64_t> tile_work_;
  /// Mesh fault domain (null in faults-off runs: every baseline path is
  /// byte-identical to a build without the feature).
  std::unique_ptr<MeshFaultDomain> fault_;
};

}  // namespace glocks::noc
