// The 2D-mesh interconnect: routers, per-tile network interfaces, wiring.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "noc/message.hpp"
#include "noc/router.hpp"
#include "sim/engine.hpp"

namespace glocks::noc {

/// The whole on-chip data network. One sim::Component: ticking the mesh
/// ticks every NIC and router in a fixed order.
///
/// Endpoints send with `send()` (unbounded NIC outbox, so callers never
/// handle backpressure) and receive through the per-tile sink registered
/// with `set_sink()`. Messages between an endpoint and itself are not
/// allowed here — the memory system short-circuits same-tile traffic,
/// matching the paper's observation that local L2 slice accesses produce
/// no network traffic.
class Mesh final : public sim::Component {
 public:
  Mesh(std::uint32_t num_tiles, std::uint32_t width, NocConfig cfg);

  std::uint32_t num_tiles() const {
    return static_cast<std::uint32_t>(nics_.size());
  }
  std::uint32_t width() const { return width_; }

  void set_sink(CoreId tile, Router::Sink sink);

  /// Queues `p` for injection at tile `p.src`. Never fails; the NIC holds
  /// packets until the router's local port has room.
  void send(Packet&& p);

  /// Builds a packet and queues it. `payload` may be null.
  void send(CoreId src, CoreId dst, MsgClass cls, std::uint32_t size_bytes,
            std::unique_ptr<PacketData> payload);

  void tick(Cycle now) override;

  const TrafficStats& stats() const { return stats_; }
  TrafficStats& stats() { return stats_; }

  /// True when no packet is anywhere in the network (for drain tests).
  bool idle() const { return in_flight_ == 0; }

  /// Minimal hop distance between two tiles.
  std::uint32_t hop_distance(CoreId a, CoreId b) const;

 private:
  struct Nic {
    /// Per-class outboxes, so a burst in one class cannot head-of-line
    /// block another class at the injection point.
    std::array<std::deque<Packet>, kNumMsgClasses> outbox;
  };

  std::uint32_t width_;
  NocConfig cfg_;
  TrafficStats stats_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<Nic> nics_;
  std::uint64_t next_seq_ = 0;
  Cycle last_tick_ = kNoCycle;
  /// Packets anywhere in the network (NIC outboxes + router queues);
  /// while zero the mesh sleeps and skipped cycles fold into catch_up().
  std::uint64_t in_flight_ = 0;
};

}  // namespace glocks::noc
