// Mesh-NoC fault domain: per-link fault injection, link-level guarded
// transfer (checksummed frames, stop-and-wait retransmission with bounded
// exponential backoff), permanent link death, and fault-aware detour
// routing. See docs/fault_model.md, "Mesh fault domain".
//
// Every directed router-to-router link owns two injector wires — a data
// wire the frames cross and an ack wire the acknowledgements return on —
// so the PR 2 fault machinery (pure-hash fates, the event ledger and its
// injected == detected + tolerated reconciliation) is reused verbatim.
// Guards hold no packets: an in-flight frame *is* the head of its input
// FIFO at the sending router until the ack lands, so the checkpoint
// format stays packet-exact and the sharded lockstep never sees a packet
// outside a router queue. All judging happens on the coordinator thread
// inside Mesh::tick, in a fixed scan order, so faulted runs are
// bit-identical across --jobs, --shards, and checkpoint/restore.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "fault/fault.hpp"
#include "noc/message.hpp"
#include "noc/router.hpp"

namespace glocks::noc {

class MeshFaultDomain final : public LinkFaultModel {
 public:
  /// `seed` is the shared fault seed (FaultConfig::seed, already mixed
  /// with the run seed by the tools); the domain salts it so the G-line
  /// and mesh injectors draw independent streams.
  MeshFaultDomain(const MeshFaultConfig& cfg, std::uint64_t seed,
                  const NocConfig& noc, std::uint32_t num_tiles,
                  std::uint32_t width,
                  std::vector<std::unique_ptr<Router>>& routers,
                  TrafficStats& stats);

  // ---- LinkFaultModel (called from Router::tick arbitration) ----
  std::uint32_t next_hop(std::uint32_t tile, std::uint32_t dst) override;
  bool head_locked(std::uint32_t tile, Dir in, MsgClass cls) override;
  bool link_busy(std::uint32_t tile, Dir out, MsgClass cls) override;
  void start_transfer(std::uint32_t tile, Dir out, Dir in, MsgClass cls,
                      Cycle now) override;

  /// One cycle of domain work, run by Mesh::tick before the router scan:
  /// applies scripted link kills due this cycle, then walks every guard
  /// in fixed (tile, dir, class) order — completing acknowledged
  /// transfers, firing retransmission watchdogs, and declaring links
  /// dead when a guard exhausts its retry budget.
  void advance(Cycle now);

  /// Closes the injector ledger and returns the domain's counters.
  fault::FaultStats finalize_stats();
  fault::FaultStats& stats() { return injector_.stats(); }

  std::uint64_t dead_links() const { return deaths_; }
  /// One-line dead-link list for SimError messages ("none" when intact).
  std::string context() const;
  /// Multi-line state dump for hang reports: dead links and busy guards.
  std::string debug_dump() const;

  /// Checkpoint: injector (ledger + stats), dead-link set, scripted-kill
  /// progress, and every guard. Detour tables are recomputed on load.
  void save(ckpt::ArchiveWriter& a) const;
  void load(ckpt::ArchiveReader& a);

 private:
  /// One directed router-to-router link (tile -> neighbor through dir).
  struct Link {
    bool exists = false;
    bool dead = false;
    std::uint32_t nbr = 0;        ///< downstream tile id
    std::uint32_t data_wire = 0;  ///< injector wire the frames cross
    std::uint32_t ack_wire = 0;   ///< injector wire the acks return on
  };

  /// Stop-and-wait ARQ state for one (directed link, message class).
  /// The guarded frame is the head of input queue (in_port, class) at
  /// the sending router while `busy && !delivered`; once delivered the
  /// packet lives downstream and only the ack is outstanding.
  struct Guard {
    bool busy = false;
    bool delivered = false;
    bool had_fault = false;  ///< this attempt window saw any fault
    Dir in_port = Dir::kLocal;
    Cycle ack_at = kNoCycle;   ///< ack completion, when one is en route
    Cycle retry_at = kNoCycle; ///< retransmission watchdog deadline
    std::uint32_t retries = 0;
    std::vector<std::int32_t> pending;  ///< open ledger events (drops)
  };

  static std::size_t dir_slot(Dir d) {
    return static_cast<std::size_t>(d) - 1;  // kNorth..kWest -> 0..3
  }
  Link& link(std::uint32_t tile, Dir d) {
    return links_[tile * 4 + dir_slot(d)];
  }
  const Link& link(std::uint32_t tile, Dir d) const {
    return links_[tile * 4 + dir_slot(d)];
  }
  Guard& guard(std::uint32_t tile, Dir d, MsgClass cls) {
    return guards_[(tile * 4 + dir_slot(d)) * kNumMsgClasses +
                   static_cast<std::size_t>(cls)];
  }
  const Guard& guard(std::uint32_t tile, Dir d, MsgClass cls) const {
    return guards_[(tile * 4 + dir_slot(d)) * kNumMsgClasses +
                   static_cast<std::size_t>(cls)];
  }

  /// XY dimension-order decision (same as Router::route), by tile ids.
  Dir xy_dir(std::uint32_t tile, std::uint32_t dst) const;
  /// Sends (or re-sends) the guarded frame on its link: judges the data
  /// wire, delivers/holds the packet, then judges the ack leg.
  void attempt(std::uint32_t tile, Dir out, MsgClass cls, Guard& g,
               Cycle now);
  /// Exponential backoff for the `retries`-th retransmission.
  Cycle backoff(std::uint32_t retries) const;
  /// Declares the directed link dead: closes its guards and stuck
  /// events, counts the failure, and rebuilds the detour tables.
  void kill_link(std::uint32_t tile, Dir d, Cycle now);
  /// Rebuilds the per-destination next-hop tables under the up*/down*
  /// turn model on the surviving links: deterministic, and free of
  /// cyclic channel dependencies (so detoured traffic cannot deadlock).
  void recompute_detours();

  std::uint64_t& counter(std::uint64_t fault::FaultStats::* f) {
    return injector_.counter(f);
  }

  MeshFaultConfig cfg_;
  NocConfig noc_;
  std::uint32_t num_tiles_;
  std::uint32_t width_;
  std::vector<std::unique_ptr<Router>>& routers_;
  TrafficStats& stats_;
  fault::FaultInjector injector_;
  std::vector<Link> links_;    ///< [tile*4 + dir-1]
  std::vector<Guard> guards_;  ///< [(tile*4 + dir-1)*3 + class]
  std::vector<LinkKill> kills_;  ///< scripted, sorted by (at, tile, dir)
  std::size_t next_kill_ = 0;
  std::uint64_t deaths_ = 0;
  /// Per-destination next-hop table, valid while deaths_ > 0:
  /// detour_[tile * num_tiles + dst] is the Dir (1..4) leaving `tile`
  /// toward `dst`, or kUnreachable.
  static constexpr std::uint8_t kUnreachable = 0xFF;
  std::vector<std::uint8_t> detour_;
  Cycle retry_base_ = 0;  ///< watchdog floor covering one worst-case RTT
};

}  // namespace glocks::noc
