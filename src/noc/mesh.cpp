#include "noc/mesh.hpp"

#include <cmath>
#include <cstdlib>

#include "common/check.hpp"

namespace glocks::noc {

Mesh::Mesh(std::uint32_t num_tiles, std::uint32_t width, NocConfig cfg)
    : width_(width), cfg_(cfg), nics_(num_tiles) {
  GLOCKS_CHECK(width_ >= 1, "mesh width must be positive");
  const RouterTiming timing{cfg_.router_latency, cfg_.link_latency,
                            cfg_.input_queue_depth};
  routers_.reserve(num_tiles);
  for (std::uint32_t t = 0; t < num_tiles; ++t) {
    routers_.push_back(std::make_unique<Router>(t % width_, t / width_,
                                                width_, timing, stats_));
  }
  for (std::uint32_t t = 0; t < num_tiles; ++t) {
    const std::uint32_t x = t % width_;
    const std::uint32_t y = t / width_;
    auto& r = *routers_[t];
    if (x + 1 < width_ && t + 1 < num_tiles) r.connect(Dir::kEast,
                                                       *routers_[t + 1]);
    if (x > 0) r.connect(Dir::kWest, *routers_[t - 1]);
    if (t + width_ < num_tiles) r.connect(Dir::kSouth, *routers_[t + width_]);
    if (y > 0) r.connect(Dir::kNorth, *routers_[t - width_]);
  }
}

void Mesh::set_sink(CoreId tile, Router::Sink sink) {
  GLOCKS_CHECK(tile < routers_.size(), "sink tile out of range");
  routers_[tile]->set_sink(std::move(sink));
}

void Mesh::send(Packet&& p) {
  GLOCKS_CHECK(p.src < nics_.size() && p.dst < nics_.size(),
               "packet endpoints out of range: " << p.src << "->" << p.dst);
  GLOCKS_CHECK(p.src != p.dst,
               "same-tile messages must bypass the mesh (tile " << p.src
                                                                << ")");
  p.seq = next_seq_++;
  auto& nic = nics_[p.src];
  nic.outbox[static_cast<std::size_t>(p.cls)].push_back(std::move(p));
}

void Mesh::send(CoreId src, CoreId dst, MsgClass cls,
                std::uint32_t size_bytes,
                std::unique_ptr<PacketData> payload) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.cls = cls;
  p.size_bytes = size_bytes;
  p.payload = std::move(payload);
  send(std::move(p));
}

void Mesh::tick(Cycle now) {
  GLOCKS_CHECK(last_tick_ == kNoCycle || now == last_tick_ + 1,
               "mesh ticked out of order");
  last_tick_ = now;
  // NICs drain into routers first so an injection made during cycle N-1
  // (endpoint tick) can enter the router fabric at cycle N. Classes
  // drain independently into their own virtual channels.
  for (std::uint32_t t = 0; t < nics_.size(); ++t) {
    for (auto& outbox : nics_[t].outbox) {
      while (!outbox.empty()) {
        if (!routers_[t]->inject(std::move(outbox.front()), now)) break;
        outbox.pop_front();
      }
    }
  }
  for (auto& r : routers_) r->tick(now);
}

bool Mesh::idle() const {
  for (const auto& nic : nics_) {
    for (const auto& q : nic.outbox) {
      if (!q.empty()) return false;
    }
  }
  for (const auto& r : routers_) {
    if (!r->idle()) return false;
  }
  return true;
}

std::uint32_t Mesh::hop_distance(CoreId a, CoreId b) const {
  const auto ax = static_cast<int>(a % width_), ay = static_cast<int>(a / width_);
  const auto bx = static_cast<int>(b % width_), by = static_cast<int>(b / width_);
  return static_cast<std::uint32_t>(std::abs(ax - bx) + std::abs(ay - by));
}

}  // namespace glocks::noc
