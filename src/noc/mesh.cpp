#include "noc/mesh.hpp"

#include <cmath>
#include <cstdlib>

#include "common/check.hpp"

namespace glocks::noc {

Mesh::Mesh(std::uint32_t num_tiles, std::uint32_t width, NocConfig cfg)
    : width_(width), cfg_(cfg), nics_(num_tiles) {
  GLOCKS_CHECK(width_ >= 1, "mesh width must be positive");
  const RouterTiming timing{cfg_.router_latency, cfg_.link_latency,
                            cfg_.input_queue_depth};
  routers_.reserve(num_tiles);
  for (std::uint32_t t = 0; t < num_tiles; ++t) {
    routers_.push_back(std::make_unique<Router>(t % width_, t / width_,
                                                width_, timing, stats_));
  }
  for (std::uint32_t t = 0; t < num_tiles; ++t) {
    const std::uint32_t x = t % width_;
    const std::uint32_t y = t / width_;
    auto& r = *routers_[t];
    if (x + 1 < width_ && t + 1 < num_tiles) r.connect(Dir::kEast,
                                                       *routers_[t + 1]);
    if (x > 0) r.connect(Dir::kWest, *routers_[t - 1]);
    if (t + width_ < num_tiles) r.connect(Dir::kSouth, *routers_[t + width_]);
    if (y > 0) r.connect(Dir::kNorth, *routers_[t - width_]);
  }
}

void Mesh::set_sink(CoreId tile, Router::Sink sink) {
  GLOCKS_CHECK(tile < routers_.size(), "sink tile out of range");
  // Wrap the sink so ejection keeps the in-flight census exact — the
  // dormancy decision below depends on it.
  routers_[tile]->set_sink([this, s = std::move(sink)](Packet&& p) {
    --in_flight_;
    s(std::move(p));
  });
}

void Mesh::send(Packet&& p) {
  GLOCKS_CHECK(p.src < nics_.size() && p.dst < nics_.size(),
               "packet endpoints out of range: " << p.src << "->" << p.dst);
  GLOCKS_CHECK(p.src != p.dst,
               "same-tile messages must bypass the mesh (tile " << p.src
                                                                << ")");
  p.seq = next_seq_++;
  auto& nic = nics_[p.src];
  nic.outbox[static_cast<std::size_t>(p.cls)].push_back(std::move(p));
  ++in_flight_;
  wake();  // a dormant mesh has new work (no-op when already active)
}

void Mesh::send(CoreId src, CoreId dst, MsgClass cls,
                std::uint32_t size_bytes,
                std::unique_ptr<PacketData> payload) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.cls = cls;
  p.size_bytes = size_bytes;
  p.payload = std::move(payload);
  send(std::move(p));
}

void Mesh::tick(Cycle now) {
  if (last_tick_ != kNoCycle) {
    GLOCKS_CHECK(now > last_tick_, "mesh ticked out of order");
    const Cycle gap = now - last_tick_ - 1;
    if (gap > 0) {
      // The kernel skipped cycles while the network was empty; fold the
      // missed round-robin rotations in so arbitration order (and every
      // downstream byte) matches the tick-everything loop.
      for (auto& r : routers_) r->catch_up(gap);
    }
  }
  last_tick_ = now;
  // NICs drain into routers first so an injection made during cycle N-1
  // (endpoint tick) can enter the router fabric at cycle N. Classes
  // drain independently into their own virtual channels.
  for (std::uint32_t t = 0; t < nics_.size(); ++t) {
    for (auto& outbox : nics_[t].outbox) {
      while (!outbox.empty()) {
        if (!routers_[t]->inject(std::move(outbox.front()), now)) break;
        outbox.pop_front();
      }
    }
  }
  for (auto& r : routers_) r->tick(now);
  // A non-empty network may move a packet any cycle (and backpressure
  // resolution has no wake signal), so only an empty one may sleep.
  if (in_flight_ == 0) sleep();
}

std::uint32_t Mesh::hop_distance(CoreId a, CoreId b) const {
  const auto ax = static_cast<int>(a % width_), ay = static_cast<int>(a / width_);
  const auto bx = static_cast<int>(b % width_), by = static_cast<int>(b / width_);
  return static_cast<std::uint32_t>(std::abs(ax - bx) + std::abs(ay - by));
}

}  // namespace glocks::noc
