#include "noc/mesh.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "ckpt/archive.hpp"
#include "common/check.hpp"
#include "noc/fault_domain.hpp"

namespace glocks::noc {

Mesh::Mesh(std::uint32_t num_tiles, std::uint32_t width, NocConfig cfg)
    : width_(width),
      cfg_(cfg),
      nics_(num_tiles),
      sinks_(num_tiles),
      tile_seq_(num_tiles, 0),
      tile_work_(num_tiles, 0) {
  GLOCKS_CHECK(width_ >= 1, "mesh width must be positive");
  const RouterTiming timing{cfg_.router_latency, cfg_.link_latency,
                            cfg_.input_queue_depth};
  routers_.reserve(num_tiles);
  for (std::uint32_t t = 0; t < num_tiles; ++t) {
    routers_.push_back(std::make_unique<Router>(t % width_, t / width_,
                                                width_, timing, stats_));
  }
  for (std::uint32_t t = 0; t < num_tiles; ++t) {
    const std::uint32_t x = t % width_;
    const std::uint32_t y = t / width_;
    auto& r = *routers_[t];
    if (x + 1 < width_ && t + 1 < num_tiles) r.connect(Dir::kEast,
                                                       *routers_[t + 1]);
    if (x > 0) r.connect(Dir::kWest, *routers_[t - 1]);
    if (t + width_ < num_tiles) r.connect(Dir::kSouth, *routers_[t + width_]);
    if (y > 0) r.connect(Dir::kNorth, *routers_[t - width_]);
  }
}

Mesh::~Mesh() = default;

void Mesh::enable_fault_domain(const FaultConfig& cfg) {
  GLOCKS_CHECK(cfg.mesh.enabled, "mesh fault domain enabled without config");
  GLOCKS_CHECK(fault_ == nullptr, "mesh fault domain enabled twice");
  GLOCKS_CHECK(last_tick_ == kNoCycle && in_flight_ == 0,
               "mesh fault domain must be armed before the first tick");
  fault_ = std::make_unique<MeshFaultDomain>(cfg.mesh, cfg.seed, cfg_,
                                             num_tiles(), width_, routers_,
                                             stats_);
  for (auto& r : routers_) r->set_fault_model(fault_.get());
}

fault::FaultStats Mesh::finalize_fault_stats() {
  GLOCKS_CHECK(fault_ != nullptr, "finalize_fault_stats without the domain");
  return fault_->finalize_stats();
}

std::string Mesh::fault_context() const {
  return fault_ == nullptr ? "off" : fault_->context();
}

std::string Mesh::debug_dump() const {
  std::ostringstream oss;
  oss << "  in flight " << in_flight_ << " (" << express_.size()
      << " express)\n";
  std::size_t staged_flits = 0;
  for (const BoundaryLink& bl : blinks_) {
    for (const auto& q : bl.staged) staged_flits += q.size();
  }
  if (staged_flits > 0) {
    oss << "  boundary-staged flits " << staged_flits << "\n";
  }
  for (std::uint32_t t = 0; t < nics_.size(); ++t) {
    std::size_t backlog = 0;
    for (const auto& outbox : nics_[t].outbox) backlog += outbox.size();
    if (backlog == 0 && routers_[t]->idle()) continue;
    oss << "  tile " << t << ": nic backlog " << backlog
        << ", router occupancy " << routers_[t]->occupancy() << "\n";
  }
  if (fault_ != nullptr) oss << fault_->debug_dump();
  return oss.str();
}

void Mesh::set_sink(CoreId tile, Router::Sink sink) {
  GLOCKS_CHECK(tile < routers_.size(), "sink tile out of range");
  // Wrap the sink so ejection keeps the in-flight census exact — the
  // dormancy decision below depends on it. The router ejects through the
  // same wrapper, so hop-by-hop and express deliveries are accounted
  // identically.
  sinks_[tile] = [this, tile, s = std::move(sink)](Packet&& p) {
    if (epoch_windowed_) {
      // Inside a window the ejecting worker owns only its region's
      // counters; the in-flight delta folds into the census at the
      // barrier. epoch_windowed_ is set/cleared on the main thread
      // around the crew waves, so workers read it race-free.
      Region& r = regions_[tile_shard_[tile]];
      --r.load;
      --r.in_flight_delta;
    } else {
      --in_flight_;
    }
    s(std::move(p));
  };
  routers_[tile]->set_sink(
      [this, tile](Packet&& p) { sinks_[tile](std::move(p)); });
}

void Mesh::send(Packet&& p, Cycle now) {
  GLOCKS_CHECK(p.src < nics_.size() && p.dst < nics_.size(),
               "packet endpoints out of range: " << p.src << "->" << p.dst);
  GLOCKS_CHECK(p.src != p.dst,
               "same-tile messages must bypass the mesh (tile " << p.src
                                                                << ")");
  if (num_shards_ > 1) {
    if (const sim::WorkerScope* ws = sim::Engine::current_worker()) {
      if (epoch_windowed_) {
        // Windowed epoch: the worker owns its whole region, so the send
        // enters its own tile's NIC directly — no barrier round-trip.
        send_windowed(ws->shard, std::move(p));
        return;
      }
      // Lockstep epoch: a shard worker may not touch the fabric; stage
      // the send for the barrier flush. The per-shard buffer stays in
      // ascending sender-slot order because each worker ticks its slots
      // in order.
      staged_[ws->shard].push_back(Staged{ws->slot, std::move(p), now});
      return;
    }
  }
  send_now(std::move(p), now);
}

void Mesh::stamp_seq(Packet& p) {
  // Pooled payload nodes are reused, but a Packet's identity is its seq,
  // stamped fresh for every injection — tracing stays unambiguous as
  // long as a stream cannot wrap within a run. Streams are per source
  // tile (tile in the top bits): tile T's k-th injection is the same
  // logical packet under every execution strategy, so checkpoints stay
  // byte-identical across shard counts and window lengths, and a
  // windowed worker stamps its own tiles' sends without synchronization.
#ifndef NDEBUG
  GLOCKS_CHECK(tile_seq_[p.src] < (std::uint64_t{1} << 40),
               "Packet::seq stream exhausted for tile " << p.src);
#endif
  p.seq = (static_cast<std::uint64_t>(p.src) << 40) | tile_seq_[p.src]++;
}

void Mesh::send_windowed(std::uint32_t shard, Packet&& p) {
  GLOCKS_CHECK(tile_shard_[p.src] == shard,
               "windowed send from tile " << p.src << " outside shard "
                                          << shard);
  stamp_seq(p);
  Region& r = regions_[shard];
  ++r.load;
  ++r.in_flight_delta;
  ++r.sent;
  nics_[p.src].outbox[static_cast<std::size_t>(p.cls)].push_back(
      std::move(p));
  // No wake: the engine re-syncs the coordinator slot's activity from
  // the folded census at the window boundary.
}

void Mesh::send_now(Packet&& p, Cycle now) {
  stamp_seq(p);
  const bool express = try_express(p, now);
  ++in_flight_;
  if (express) return;  // try_express took ownership and armed the wake
  auto& nic = nics_[p.src];
  nic.outbox[static_cast<std::size_t>(p.cls)].push_back(std::move(p));
  wake();  // a dormant mesh has new work (no-op when already active)
}

void Mesh::send(CoreId src, CoreId dst, MsgClass cls,
                std::uint32_t size_bytes, Cycle now, void* payload,
                PayloadKind kind) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.cls = cls;
  p.size_bytes = size_bytes;
  p.payload = payload;
  p.kind = kind;
  send(std::move(p), now);
}

void Mesh::set_sharding(std::uint32_t num_shards,
                        std::vector<std::uint32_t> tile_shard,
                        bool window_capable) {
  for (const auto& buf : staged_) {
    GLOCKS_CHECK(buf.empty(), "set_sharding with staged sends pending");
  }
  GLOCKS_CHECK(!epoch_windowed_, "set_sharding inside a window");
  for (const BoundaryLink& bl : blinks_) {
    for (const auto& q : bl.staged) {
      GLOCKS_CHECK(q.empty(), "set_sharding with staged boundary flits");
    }
  }
  // Tear down any previous region plan (folding is a no-op between
  // epochs — every delta folds at window/tick end — but keeps the
  // totals right even on error paths).
  if (window_mode_) fold_regions();
  for (auto& r : routers_) {
    r->clear_boundaries();
    r->rebind_stats(&stats_);
  }
  regions_.clear();
  blinks_.clear();
  window_mode_ = false;
  if (num_shards <= 1) {
    num_shards_ = 1;
    tile_shard_.clear();
    staged_.clear();
    return;
  }
  GLOCKS_CHECK(tile_shard.size() == nics_.size(),
               "tile->shard map covers " << tile_shard.size() << " of "
                                         << nics_.size() << " tiles");
  num_shards_ = num_shards;
  tile_shard_ = std::move(tile_shard);
  staged_.assign(num_shards_, {});
  if (!window_capable) return;

  // Region plan: the fabric itself splits into per-shard tile blocks so
  // windowed epochs can tick it in parallel.
  GLOCKS_CHECK(fault_ == nullptr,
               "window-capable sharding with the fault domain armed");
  GLOCKS_CHECK(express_.empty(),
               "window-capable sharding with live express flights "
               "(materialize first)");
  GLOCKS_CHECK(cfg_.router_latency + cfg_.link_latency >= 1,
               "window-capable sharding needs a positive per-hop latency");
  const auto tiles = static_cast<std::uint32_t>(nics_.size());
  regions_.resize(num_shards_);
  // Each region keeps its own ascending tile list — the ownership map
  // may be arbitrary (stripes, quadrants, profile-balanced). Ascending
  // ids per region preserve the serial tick order among a region's own
  // tiles; cross-region order is irrelevant because regions only talk
  // through the boundary taps.
  for (std::uint32_t i = 0; i < tiles; ++i) {
    GLOCKS_CHECK(tile_shard_[i] < num_shards_,
                 "tile " << i << " owned by shard " << tile_shard_[i]
                         << " of " << num_shards_);
    regions_[tile_shard_[i]].tiles.push_back(i);
  }
  // Per-region stat buckets: concurrent region ticks record into their
  // own bucket; fold_regions moves them into the shared totals at every
  // barrier, so end-of-run reads see exactly the serial counters.
  // regions_ is sized once above — the bucket pointers stay valid.
  for (std::uint32_t i = 0; i < tiles; ++i) {
    routers_[i]->rebind_stats(&regions_[tile_shard_[i]].stats);
  }
  // Boundary taps on every directed cross-region link (same neighbor
  // geometry as the constructor wiring).
  for (std::uint32_t i = 0; i < tiles; ++i) {
    const std::uint32_t x = i % width_;
    const std::uint32_t y = i / width_;
    const auto tap = [&](Dir d, std::uint32_t n) {
      if (tile_shard_[n] == tile_shard_[i]) return;
      BoundaryLink bl;
      bl.src = i;
      bl.dst = n;
      bl.in = opposite(d);
      blinks_.push_back(std::move(bl));
      routers_[i]->set_boundary(
          this, d, static_cast<std::int32_t>(blinks_.size() - 1));
    };
    if (x + 1 < width_ && i + 1 < tiles) tap(Dir::kEast, i + 1);
    if (x > 0) tap(Dir::kWest, i - 1);
    if (i + width_ < tiles) tap(Dir::kSouth, i + width_);
    if (y > 0) tap(Dir::kNorth, i - width_);
  }
  window_mode_ = true;
}

void Mesh::flush_staged() {
  // Replay in ascending global sender-slot order (k-way merge across the
  // shard buffers; a sender slot lives in exactly one shard, so ties are
  // impossible). This is the order the serial scan issues sends in, so
  // seq stamping, express decisions, and NIC occupancy all match.
  std::size_t remaining = 0;
  for (const auto& buf : staged_) remaining += buf.size();
  if (remaining == 0) return;
  staged_sends_ += remaining;
  std::vector<std::size_t> idx(staged_.size(), 0);
  while (remaining > 0) {
    std::size_t best = staged_.size();
    std::uint32_t best_sender = 0xFFFFFFFFu;
    for (std::size_t s = 0; s < staged_.size(); ++s) {
      if (idx[s] < staged_[s].size() &&
          staged_[s][idx[s]].sender_slot < best_sender) {
        best_sender = staged_[s][idx[s]].sender_slot;
        best = s;
      }
    }
    Staged& st = staged_[best][idx[best]++];
    send_now(std::move(st.pkt), st.now);
    --remaining;
  }
  for (auto& buf : staged_) buf.clear();
}

Cycle Mesh::next_tick_at(Cycle now) const {
  // Registered: the engine knows whether this cycle's mesh tick already
  // ran (the serial N -> N+1 visibility rule). Manually-driven meshes
  // (unit tests) are assumed to be ticked every cycle, so the answer
  // follows from whether tick(now) has happened yet.
  if (registered()) return next_tick_cycle();
  return last_tick_ == now ? now + 1 : now;
}

template <typename Fn>
void Mesh::walk_route(const Flight& f, Fn&& fn) const {
  const Cycle hop = cfg_.router_latency + cfg_.link_latency;
  std::uint32_t x = f.pkt.src % width_;
  std::uint32_t y = f.pkt.src / width_;
  const std::uint32_t dx = f.pkt.dst % width_;
  const std::uint32_t dy = f.pkt.dst / width_;
  Dir in = Dir::kLocal;
  for (std::uint32_t k = 0;; ++k) {
    // Same XY dimension-order decision as Router::route.
    Dir out;
    if (dx > x) {
      out = Dir::kEast;
    } else if (dx < x) {
      out = Dir::kWest;
    } else if (dy > y) {
      out = Dir::kSouth;
    } else if (dy < y) {
      out = Dir::kNorth;
    } else {
      out = Dir::kLocal;
    }
    fn(k, y * width_ + x, in, out, f.inject + 1 + k * hop);
    if (out == Dir::kLocal) break;
    switch (out) {
      case Dir::kEast: ++x; break;
      case Dir::kWest: --x; break;
      case Dir::kSouth: ++y; break;
      case Dir::kNorth: --y; break;
      case Dir::kLocal: break;
    }
    in = opposite(out);
  }
}

bool Mesh::route_conflicts(const Flight& cand) const {
  // A flight's trajectory is rigid, so two flights coexist exactly when
  // no router resource is claimed twice: (a) no router is made busy by
  // two flights on the same cycle — busy cycles are a flight's switch
  // traversals plus its final local delivery, and the round-robin
  // rotation is credited one step per busy cycle per router, so a shared
  // (tile, cycle) would double-count a rotation the serial scan performs
  // once; (b) a FIFO never holds more than input_queue_depth entries,
  // checked by counting window overlaps, which over-approximates peak
  // occupancy. Over-approximation only causes a spurious decline, and
  // the hop-by-hop path is always exact.
  constexpr std::size_t kMaxRoute = 128;
  if (cand.hops + 1 > kMaxRoute) return true;  // decline absurd routes
  const Cycle hop = cfg_.router_latency + cfg_.link_latency;
  std::array<std::uint32_t, kMaxRoute> occ{};
  bool conflict = false;
  for (const Flight& b : express_) {
    walk_route(cand, [&](std::uint32_t ka, std::uint32_t ta, Dir ina,
                         Dir outa, Cycle ca) {
      (void)outa;
      if (conflict) return;
      const Cycle ea = ka == 0 ? cand.inject : ca - hop;  // FIFO entry
      walk_route(b, [&](std::uint32_t kb, std::uint32_t tb, Dir inb,
                        Dir outb, Cycle cb) {
        (void)outb;
        if (conflict || ta != tb) return;
        if (ca == cb) {  // same router busy on the same cycle
          conflict = true;
          return;
        }
        const bool same_queue = ina == inb && cand.pkt.cls == b.pkt.cls;
        if (same_queue) {
          const Cycle eb = kb == 0 ? b.inject : cb - hop;
          if (ea < cb && eb < ca &&  // residency windows [e, c) overlap
              ++occ[ka] >= cfg_.input_queue_depth) {
            conflict = true;
          }
        }
      });
      // b's final delivery makes its destination router busy too.
      if (!conflict && ta == b.pkt.dst && ca == b.arrival) conflict = true;
    });
    if (!conflict) {
      walk_route(b, [&](std::uint32_t kb, std::uint32_t tb, Dir inb,
                        Dir outb, Cycle cb) {
        (void)kb;
        (void)inb;
        (void)outb;
        if (tb == cand.pkt.dst && cb == cand.arrival) conflict = true;
      });
      if (cand.pkt.dst == b.pkt.dst && cand.arrival == b.arrival) {
        conflict = true;
      }
    }
    if (conflict) break;
  }
  return conflict;
}

bool Mesh::try_express(Packet& p, Cycle now) {
  if (window_mode_) {
    // Regions own the fabric under a window plan: an analytic flight
    // would span shard state, so every send takes the physical path.
    // (Windowed sends never reach here; their declines are tallied at
    // the fold, so every send still counts exactly once.)
    ++xperf_.declined;
    return false;
  }
  if (fault_ != nullptr) {
    // Faulted routes are not analytically rigid (fates, retransmissions
    // and detours all depend on the cycle-by-cycle state), so the fault
    // domain declines every flight — timing-neutral, because the
    // hop-by-hop path is always exact.
    ++xperf_.declined;
    return false;
  }
  if (!cfg_.express_routes) {
    ++xperf_.declined;
    return false;
  }
  // Express flights exist only while the physical fabric is completely
  // empty; the first send that cannot be proven conflict-free demotes
  // every flight and the fabric continues hop-by-hop.
  if (!fabric_empty()) {
    ++xperf_.declined;
    return false;
  }
  if (num_shards_ > 1 && tile_shard_[p.src] != tile_shard_[p.dst]) {
    // Boundary rule: a route crossing a shard boundary inside the
    // current horizon is never fast-forwarded — the flush already
    // serialized the send, and declining keeps the analytic ledger from
    // ever spanning shards. Materialize first to preserve the standing
    // invariant that flights exist only over an empty fabric. Timing is
    // unchanged (the hop-by-hop path is exact); only the express
    // counters differ from a single-shard run.
    materialize_all(now);
    ++xperf_.declined;
    return false;
  }
  Flight f;
  f.pkt = p;  // Packet is trivially copyable; ownership resolves below
  f.inject = next_tick_at(now);
  f.hops = hop_distance(p.src, p.dst);
  // Injected at `inject`, first forwarded one cycle later, then one
  // switch every router_latency + link_latency, and router_latency more
  // from the last switch to the sink — the zero-load latency formula.
  const Cycle hop = cfg_.router_latency + cfg_.link_latency;
  f.arrival = f.inject + 1 + f.hops * hop + cfg_.router_latency;
  if (route_conflicts(f)) {
    materialize_all(now);
    ++xperf_.declined;
    return false;
  }
  const Cycle arrival = f.arrival;
  express_.push_back(std::move(f));
  wake_at(arrival);  // the only tick this delivery needs
  return true;
}

void Mesh::materialize_all(Cycle now) {
  if (express_.empty()) return;
  const Cycle t_next = next_tick_at(now);
  placements_.clear();
  for (std::size_t fi = 0; fi < express_.size(); ++fi) {
    const Flight& f = express_[fi];
    GLOCKS_CHECK(f.arrival >= t_next, "stale express flight never delivered");
    // Find where the hop-by-hop path would hold this packet at t_next:
    // the FIFO whose release cycle is the first at or after t_next, or
    // the destination's ejection queue if it is past its last switch.
    bool placed = false;
    std::uint32_t hops_done = 0;
    walk_route(f, [&](std::uint32_t k, std::uint32_t tile, Dir in, Dir out,
                      Cycle fwd) {
      (void)out;
      if (placed) return;
      if (fwd >= t_next) {
        placements_.push_back(
            Placement{tile, in, /*ejection=*/false, f.pkt.cls, fwd, fi});
        placed = true;
        hops_done = k;  // switches k..hops still happen physically
      } else {
        // This switch already happened on the virtual timeline: the
        // router saw a ready head on cycle `fwd` (nothing else was in
        // the fabric), so credit its round-robin rotation. Switches
        // k..hops advance it live as the re-seeded entries mature.
        routers_[tile]->credit_busy_tick();
      }
    });
    if (!placed) {
      placements_.push_back(Placement{f.pkt.dst, Dir::kLocal,
                                      /*ejection=*/true, f.pkt.cls, f.arrival,
                                      fi});
      hops_done = f.hops + 1;  // every switch already credited below
    }
    // Credit exactly the traversals the physical path would have
    // recorded by now; the router loop records the rest as they happen.
    stats_.record_injection(f.pkt.cls);
    for (std::uint32_t k = 0; k < hops_done; ++k) {
      stats_.record_hop(f.pkt.cls, f.pkt.size_bytes);
    }
  }
  // Within one FIFO, entry order equals release order (both paths shift
  // by the same per-hop latency), so seed each queue in ready order.
  // The ejection queue is one FIFO shared by every class — its physical
  // push order is forward order, i.e. ready order, never class order.
  std::sort(placements_.begin(), placements_.end(),
            [](const Placement& a, const Placement& b) {
              if (a.tile != b.tile) return a.tile < b.tile;
              if (a.ejection != b.ejection) return a.ejection < b.ejection;
              if (!a.ejection) {
                if (a.in != b.in) return a.in < b.in;
                if (a.cls != b.cls) return a.cls < b.cls;
              }
              if (a.ready != b.ready) return a.ready < b.ready;
              return a.flight < b.flight;  // send order breaks exact ties
            });
  for (const Placement& pl : placements_) {
    Packet pkt = express_[pl.flight].pkt;
    if (pl.ejection) {
      routers_[pl.tile]->place_local(std::move(pkt), pl.ready);
    } else {
      routers_[pl.tile]->place(pl.in, pl.cls, std::move(pkt), pl.ready);
    }
  }
  xperf_.materialized += express_.size();
  express_.clear();
  wake();  // the fabric is occupied again; ticks must resume
}

void Mesh::deliver_due_express(Cycle now) {
  if (express_.empty()) return;
  due_.clear();
  for (std::size_t i = 0; i < express_.size(); ++i) {
    if (express_[i].arrival <= now) due_.push_back(i);
  }
  if (due_.empty()) return;
  // Eject in (arrival, tile) order — the order the router loop would
  // have used — and remove the flights from the ledger before any sink
  // runs, so a send made from inside a sink sees a consistent state.
  std::sort(due_.begin(), due_.end(), [this](std::size_t a, std::size_t b) {
    if (express_[a].arrival != express_[b].arrival) {
      return express_[a].arrival < express_[b].arrival;
    }
    return express_[a].pkt.dst < express_[b].pkt.dst;
  });
  delivering_.clear();
  for (const std::size_t i : due_) {
    delivering_.push_back(std::move(express_[i]));
  }
  // Compact express_: drop the moved-out flights, keep send order.
  std::size_t kept = 0;
  std::size_t next_due = 0;
  std::sort(due_.begin(), due_.end());
  for (std::size_t i = 0; i < express_.size(); ++i) {
    if (next_due < due_.size() && due_[next_due] == i) {
      ++next_due;
      continue;
    }
    express_[kept++] = std::move(express_[i]);
  }
  express_.resize(kept);
  for (Flight& f : delivering_) {
    // The full per-hop accounting, identical to hops+1 switch
    // traversals of the hop-by-hop path (only ever read end-of-run).
    stats_.record_injection(f.pkt.cls);
    for (std::uint32_t k = 0; k <= f.hops; ++k) {
      stats_.record_hop(f.pkt.cls, f.pkt.size_bytes);
    }
    // Credit the round-robin rotations the hop-by-hop path would have
    // performed: one busy cycle per switch traversal (every fwd cycle is
    // in the past — the last one was arrival - router_latency), plus the
    // delivery cycle at the destination. The fabric was physically empty
    // for the flight's whole life and route_conflicts guarantees no two
    // flights share a (tile, cycle), so each credit is exactly one
    // rotation the serial scan performed.
    walk_route(f, [this](std::uint32_t k, std::uint32_t tile, Dir in,
                         Dir out, Cycle fwd) {
      (void)k;
      (void)in;
      (void)out;
      (void)fwd;
      routers_[tile]->credit_busy_tick();
    });
    routers_[f.pkt.dst]->credit_busy_tick();
  }
  for (Flight& f : delivering_) {
    const CoreId dst = f.pkt.dst;
    GLOCKS_CHECK(sinks_[dst], "tile " << dst << " has no sink");
    ++xperf_.hits;
    sinks_[dst](std::move(f.pkt));
  }
  delivering_.clear();
}

void Mesh::tick(Cycle now) {
  if (last_tick_ != kNoCycle) {
    GLOCKS_CHECK(now > last_tick_, "mesh ticked out of order");
    // Skipped cycles need no repair: an idle router tick has no
    // architectural effect (the round-robin pointer only moves on
    // ready-head cycles), so a dormant span folds to nothing.
  }
  last_tick_ = now;
  // Fault-domain work precedes arbitration: scripted kills and guard
  // progression (ack completions, retransmission watchdogs, link
  // deaths) must be visible to this cycle's router scan. All of it runs
  // here on the coordinator thread, in a fixed order, so faulted runs
  // stay bit-identical across --jobs, --shards, and restore.
  if (fault_ != nullptr) fault_->advance(now);
  // NICs drain into routers first so an injection made during cycle N-1
  // (endpoint tick) can enter the router fabric at cycle N. Classes
  // drain independently into their own virtual channels.
  for (std::uint32_t t = 0; t < nics_.size(); ++t) {
    for (auto& outbox : nics_[t].outbox) {
      while (!outbox.empty()) {
        if (!routers_[t]->inject(std::move(outbox.front()), now)) break;
        outbox.pop_front();
      }
    }
  }
  // Express deliveries eject here, matching the phase where the router
  // loop hands packets to sinks (after the NIC drain, so a send made
  // from inside a sink is injected next cycle on either path).
  deliver_due_express(now);
  for (std::uint32_t t = 0; t < routers_.size(); ++t) {
    if (routers_[t]->occupancy() > 0) ++tile_work_[t];
    routers_[t]->tick(now);
  }
  if (window_mode_) {
    // Lockstep epoch under a window plan: cross-region forwards were
    // staged by the boundary taps (live capacity reads — exact). Deliver
    // them now; every entry lands before its ready cycle and each input
    // port has a single feeder, so next-cycle arbitration is
    // byte-identical to the direct forward.
    flush_boundary();
    fold_regions();
  }
  // A non-empty fabric may move a packet any cycle (and backpressure
  // resolution has no wake signal), so only an empty one may sleep.
  // Express flights don't count: each carries its own armed wake. With
  // the fault domain armed the mesh never sleeps: scripted kills and
  // retransmission timers must fire on their exact cycles.
  if (fault_ == nullptr && fabric_empty()) sleep();
}

sim::MeshWindowLimits Mesh::window_limits(Cycle now) const {
  sim::MeshWindowLimits ml;
  if (!window_mode_ || fault_ != nullptr) {
    ml.lockstep = true;
    return ml;
  }
  GLOCKS_CHECK(express_.empty(), "express flight under a window plan");
  ml.busy = in_flight_ > 0;
  if (!ml.busy) return ml;
  // Busy fabric: a window stays exact until the first cycle a forward
  // could physically cross a boundary (one hop: router + link latency)
  // or a boundary FIFO could fill past its frozen base. The headroom
  // clamp guarantees base + staged < depth at every in-window capacity
  // check (at most one flit stages per link per cycle), so the taps
  // never decline a forward the serial scan accepts.
  const Cycle per_hop = cfg_.router_latency + cfg_.link_latency;
  std::uint64_t headroom = ~std::uint64_t{0};
  for (const BoundaryLink& bl : blinks_) {
    for (std::size_t c = 0; c < kNumMsgClasses; ++c) {
      const std::uint32_t sz =
          routers_[bl.dst]->queue_size(bl.in, static_cast<MsgClass>(c));
      const std::uint64_t room =
          sz >= cfg_.input_queue_depth ? 0 : cfg_.input_queue_depth - sz;
      headroom = std::min(headroom, room);
    }
  }
  if (headroom == 0) {
    // A boundary FIFO is brim-full: a frozen-base check could decline a
    // forward the live scan accepts (the FIFO may drain mid-window).
    // Lockstep epochs read live state, so they are always exact.
    ml.lockstep = true;
    return ml;
  }
  ml.max_end = now + std::min<std::uint64_t>(per_hop, headroom);
  // Conservative lower bound on the earliest sink delivery anywhere:
  // the planner stops mem-waiter windows here so a delivery chain can
  // never wake a core mid-window. A NIC-backlogged packet needs an
  // inject (ready +1) and an ejection traversal; queued packets bound
  // through their head ready cycles.
  Cycle d = kNoCycle;
  for (std::uint32_t t = 0; t < nics_.size(); ++t) {
    for (const auto& outbox : nics_[t].outbox) {
      if (!outbox.empty()) {
        d = std::min(d, now + 1 + cfg_.router_latency);
        break;
      }
    }
    const Router& r = *routers_[t];
    d = std::min(d, r.local_head_ready());
    const Cycle ir = r.earliest_input_ready();
    if (ir != kNoCycle) d = std::min(d, ir + cfg_.router_latency);
  }
  ml.delivery = d;
  return ml;
}

void Mesh::begin_window(Cycle start, Cycle end) {
  (void)start;
  (void)end;
  GLOCKS_CHECK(window_mode_ && !epoch_windowed_,
               "begin_window without a region plan (or nested)");
  // Region loads are recomputed from scratch so lockstep epochs (which
  // move packets without touching them) need no bookkeeping.
  for (Region& r : regions_) r.load = 0;
  for (std::uint32_t t = 0; t < nics_.size(); ++t) {
    std::uint64_t held = routers_[t]->occupancy();
    for (const auto& outbox : nics_[t].outbox) held += outbox.size();
    regions_[tile_shard_[t]].load += held;
  }
  for (BoundaryLink& bl : blinks_) {
    for (std::size_t c = 0; c < kNumMsgClasses; ++c) {
      bl.base[c] =
          routers_[bl.dst]->queue_size(bl.in, static_cast<MsgClass>(c));
    }
  }
  epoch_windowed_ = true;
}

void Mesh::tick_region(std::uint32_t shard, Cycle now) {
  Region& r = regions_[shard];
  if (r.load == 0) return;
  r.last_tick = now;
  // Same per-cycle order as the serial mesh tick, restricted to the
  // region's tiles: NIC drains first (so last cycle's sends can enter
  // the fabric), then the routers in ascending tile order (the region
  // list is ascending for any ownership map).
  for (const std::uint32_t t : r.tiles) {
    for (auto& outbox : nics_[t].outbox) {
      while (!outbox.empty()) {
        if (!routers_[t]->inject(std::move(outbox.front()), now)) break;
        outbox.pop_front();
      }
    }
  }
  for (const std::uint32_t t : r.tiles) {
    if (routers_[t]->occupancy() > 0) ++tile_work_[t];
    routers_[t]->tick(now);
  }
}

bool Mesh::end_window(Cycle end) {
  (void)end;
  GLOCKS_CHECK(epoch_windowed_, "end_window outside a window");
  epoch_windowed_ = false;
  flush_boundary();
  fold_regions();
  return in_flight_ > 0;
}

bool Mesh::boundary_can_accept(std::int32_t link, MsgClass cls) const {
  const BoundaryLink& bl = blinks_[static_cast<std::size_t>(link)];
  const auto c = static_cast<std::size_t>(cls);
  // Windowed: frozen base (the downstream FIFO belongs to another
  // thread). Lockstep: live depth — exactly what can_accept() reads.
  const std::uint32_t queued =
      epoch_windowed_ ? bl.base[c]
                      : routers_[bl.dst]->queue_size(bl.in, cls);
  return queued + bl.staged[c].size() < cfg_.input_queue_depth;
}

void Mesh::boundary_stage(std::int32_t link, Packet&& p, Cycle ready) {
  BoundaryLink& bl = blinks_[static_cast<std::size_t>(link)];
  if (epoch_windowed_) {
    // The packet leaves the source region now; the destination region
    // counts it when the flush delivers it.
    --regions_[tile_shard_[bl.src]].load;
  }
  bl.staged[static_cast<std::size_t>(p.cls)].push_back(
      StagedFlit{ready, std::move(p)});
}

void Mesh::flush_boundary() {
  for (BoundaryLink& bl : blinks_) {
    for (auto& q : bl.staged) {
      for (StagedFlit& f : q) {
        // Always before f.ready (windows are capped at the per-hop
        // latency and lockstep flushes happen the same cycle), so the
        // downstream arbitration sees exactly the serial entry.
        routers_[bl.dst]->accept(bl.in, std::move(f.pkt), f.ready);
        ++regions_[tile_shard_[bl.dst]].load;
        ++boundary_flits_;
      }
      q.clear();
    }
  }
}

void Mesh::fold_regions() {
  for (Region& r : regions_) {
    in_flight_ = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(in_flight_) + r.in_flight_delta);
    r.in_flight_delta = 0;
    windowed_sends_ += r.sent;
    // Every windowed send is a declined express (the physical path was
    // taken from the start) — the tally-exactly-once invariant.
    xperf_.declined += r.sent;
    r.sent = 0;
    if (r.last_tick != kNoCycle) {
      last_tick_ = last_tick_ == kNoCycle
                       ? r.last_tick
                       : std::max(last_tick_, r.last_tick);
    }
    for (std::size_t c = 0; c < kNumMsgClasses; ++c) {
      const auto cls = static_cast<MsgClass>(c);
      if (r.stats.bytes(cls) == 0 && r.stats.packets(cls) == 0 &&
          r.stats.hops(cls) == 0) {
        continue;
      }
      stats_.set(cls, stats_.bytes(cls) + r.stats.bytes(cls),
                 stats_.packets(cls) + r.stats.packets(cls),
                 stats_.hops(cls) + r.stats.hops(cls));
      r.stats.set(cls, 0, 0, 0);
    }
  }
}

void Mesh::save(ckpt::ArchiveWriter& a, const PayloadCodec& codec) const {
  // Checkpoints are taken between cycles, after the barrier hooks ran —
  // the staging buffers must be empty, so the archive format needs no
  // shard-dependent sections.
  for (const auto& buf : staged_) {
    GLOCKS_CHECK(buf.empty(), "mesh save with staged sends pending");
  }
  // Checkpoints land at window boundaries (the planner clamps every
  // window at the pause cycle), so the boundary staging buffers are
  // flushed and the archive needs no window-dependent sections.
  GLOCKS_CHECK(!epoch_windowed_, "mesh save inside a window");
  for (const BoundaryLink& bl : blinks_) {
    for (const auto& q : bl.staged) {
      GLOCKS_CHECK(q.empty(), "mesh save with staged boundary flits");
    }
  }
  for (std::size_t c = 0; c < kNumMsgClasses; ++c) {
    const auto cls = static_cast<MsgClass>(c);
    a.u64(stats_.bytes(cls));
    a.u64(stats_.packets(cls));
    a.u64(stats_.hops(cls));
  }
  a.u64(xperf_.hits);
  a.u64(xperf_.declined);
  a.u64(xperf_.materialized);
  for (const std::uint64_t s : tile_seq_) a.u64(s);
  a.u64(last_tick_);
  a.u64(in_flight_);
  a.u64(nics_.size());
  for (const Nic& nic : nics_) {
    for (const auto& outbox : nic.outbox) {
      a.u64(outbox.size());
      for (std::size_t i = 0; i < outbox.size(); ++i) {
        save_packet(a, outbox[i], codec);
      }
    }
  }
  a.u64(express_.size());
  for (const Flight& f : express_) {
    save_packet(a, f.pkt, codec);
    a.u64(f.inject);
    a.u64(f.arrival);
    a.u32(f.hops);
  }
  for (const auto& r : routers_) r->save(a, codec);
  // The fault domain's section is gated on its presence; the run spec in
  // the checkpoint metadata decides it identically on both sides.
  if (fault_ != nullptr) fault_->save(a);
}

void Mesh::load(ckpt::ArchiveReader& a, const PayloadCodec& codec) {
  for (std::size_t c = 0; c < kNumMsgClasses; ++c) {
    const auto cls = static_cast<MsgClass>(c);
    const std::uint64_t bytes = a.u64();
    const std::uint64_t packets = a.u64();
    const std::uint64_t hops = a.u64();
    stats_.set(cls, bytes, packets, hops);
  }
  xperf_.hits = a.u64();
  xperf_.declined = a.u64();
  xperf_.materialized = a.u64();
  for (std::uint64_t& s : tile_seq_) s = a.u64();
  last_tick_ = a.u64();
  in_flight_ = a.u64();
  const std::uint64_t tiles = a.u64();
  GLOCKS_CHECK(tiles == nics_.size(),
               "checkpoint mesh has " << tiles << " tiles, machine has "
                                      << nics_.size());
  for (Nic& nic : nics_) {
    for (auto& outbox : nic.outbox) {
      for (std::size_t i = 0; i < outbox.size(); ++i) codec.drop(outbox[i]);
      outbox.clear();
      const std::uint64_t n = a.u64();
      for (std::uint64_t i = 0; i < n; ++i) {
        outbox.push_back(load_packet(a, codec));
      }
    }
  }
  for (Flight& f : express_) codec.drop(f.pkt);
  express_.clear();
  const std::uint64_t nf = a.u64();
  for (std::uint64_t i = 0; i < nf; ++i) {
    Flight f;
    f.pkt = load_packet(a, codec);
    f.inject = a.u64();
    f.arrival = a.u64();
    f.hops = a.u32();
    express_.push_back(f);
  }
  for (const auto& r : routers_) r->load(a, codec);
  if (fault_ != nullptr) fault_->load(a);
}

std::uint32_t Mesh::hop_distance(CoreId a, CoreId b) const {
  const auto ax = static_cast<int>(a % width_), ay = static_cast<int>(a / width_);
  const auto bx = static_cast<int>(b % width_), by = static_cast<int>(b / width_);
  return static_cast<std::uint32_t>(std::abs(ax - bx) + std::abs(ay - by));
}

}  // namespace glocks::noc
