#include "noc/fault_domain.hpp"

#include <algorithm>
#include <sstream>

#include "ckpt/archive.hpp"
#include "common/check.hpp"

namespace glocks::noc {

namespace {

/// Maps the mesh sub-config onto the injector's knob names. The injector
/// machinery is domain-agnostic: "stuck" plays the role of a link dying
/// outright, the watchdog knobs drive the link-level ARQ.
FaultConfig injector_view(const MeshFaultConfig& m, std::uint64_t seed) {
  FaultConfig v;
  v.enabled = true;
  // Salt the shared seed so the G-line and mesh domains draw independent
  // fault streams from the same --fault-seed.
  v.seed = seed ^ 0x4D6573684C696E6BULL;  // "MeshLink"
  v.drop_rate = m.drop_rate;
  v.garble_rate = m.garble_rate;
  v.delay_rate = m.delay_rate;
  v.max_delay = m.max_delay;
  v.noise_rate = 0.0;  // no receiver-side noise model for mesh links
  v.stuck_rate = m.dead_rate;
  v.stuck_horizon = m.dead_horizon;
  v.watchdog_timeout = m.retry_timeout;
  v.backoff_cap = m.backoff_cap < m.retry_timeout ? m.retry_timeout
                                                  : m.backoff_cap;
  v.max_retries = m.max_retries;
  return v;
}

char dir_letter(Dir d) {
  switch (d) {
    case Dir::kNorth: return 'N';
    case Dir::kSouth: return 'S';
    case Dir::kEast: return 'E';
    case Dir::kWest: return 'W';
    case Dir::kLocal: break;
  }
  return '?';
}

}  // namespace

MeshFaultDomain::MeshFaultDomain(const MeshFaultConfig& cfg,
                                 std::uint64_t seed, const NocConfig& noc,
                                 std::uint32_t num_tiles, std::uint32_t width,
                                 std::vector<std::unique_ptr<Router>>& routers,
                                 TrafficStats& stats)
    : cfg_(cfg),
      noc_(noc),
      num_tiles_(num_tiles),
      width_(width),
      routers_(routers),
      stats_(stats),
      injector_(injector_view(cfg, seed)),
      links_(static_cast<std::size_t>(num_tiles) * 4),
      guards_(static_cast<std::size_t>(num_tiles) * 4 * kNumMsgClasses),
      kills_(cfg.kills) {
  // Register two injector wires per directed link, tile-major in the Dir
  // enum order — a fixed order, so wire ids (and with them every fate)
  // are a pure function of the machine geometry.
  for (std::uint32_t t = 0; t < num_tiles_; ++t) {
    const std::uint32_t x = t % width_;
    const std::uint32_t y = t / width_;
    for (std::uint32_t d = 1; d <= 4; ++d) {
      const Dir dir = static_cast<Dir>(d);
      Link& l = link(t, dir);
      switch (dir) {
        case Dir::kNorth:
          if (y > 0) { l.exists = true; l.nbr = t - width_; }
          break;
        case Dir::kSouth:
          if (t + width_ < num_tiles_) { l.exists = true; l.nbr = t + width_; }
          break;
        case Dir::kEast:
          if (x + 1 < width_ && t + 1 < num_tiles_) {
            l.exists = true;
            l.nbr = t + 1;
          }
          break;
        case Dir::kWest:
          if (x > 0) { l.exists = true; l.nbr = t - 1; }
          break;
        case Dir::kLocal:
          break;
      }
      if (l.exists) {
        l.data_wire = injector_.register_wire();
        l.ack_wire = injector_.register_wire();
      }
    }
  }
  for (const LinkKill& k : kills_) {
    GLOCKS_CHECK(k.tile < num_tiles_,
                 "mesh:kill tile " << k.tile << " out of range (mesh has "
                                   << num_tiles_ << " tiles)");
    GLOCKS_CHECK(link(k.tile, static_cast<Dir>(k.dir)).exists,
                 "mesh:kill names a non-existent link: tile "
                     << k.tile << " dir "
                     << dir_letter(static_cast<Dir>(k.dir)));
  }
  std::sort(kills_.begin(), kills_.end(),
            [](const LinkKill& a, const LinkKill& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.tile != b.tile) return a.tile < b.tile;
              return a.dir < b.dir;
            });
  // The watchdog floor must cover a worst-case delivered-and-acked round
  // trip (frame crossing + ack return, both maximally delayed), so a
  // successful transfer always beats its own timer and spurious
  // retransmissions cannot occur on a healthy link.
  const Cycle rtt = noc_.router_latency + 2 * noc_.link_latency +
                    2 * static_cast<Cycle>(cfg_.max_delay) + 2;
  retry_base_ = cfg_.retry_timeout > rtt ? cfg_.retry_timeout : rtt;
}

Dir MeshFaultDomain::xy_dir(std::uint32_t tile, std::uint32_t dst) const {
  const std::uint32_t x = tile % width_, y = tile / width_;
  const std::uint32_t dx = dst % width_, dy = dst / width_;
  if (dx > x) return Dir::kEast;
  if (dx < x) return Dir::kWest;
  if (dy > y) return Dir::kSouth;
  if (dy < y) return Dir::kNorth;
  return Dir::kLocal;
}

std::uint32_t MeshFaultDomain::next_hop(std::uint32_t tile,
                                        std::uint32_t dst) {
  if (dst == tile) return static_cast<std::uint32_t>(Dir::kLocal);
  if (deaths_ == 0) return static_cast<std::uint32_t>(xy_dir(tile, dst));
  const std::uint8_t e =
      detour_[static_cast<std::size_t>(tile) * num_tiles_ + dst];
  if (e == kUnreachable) return static_cast<std::uint32_t>(kNumDirs);
  return e;
}

bool MeshFaultDomain::head_locked(std::uint32_t tile, Dir in, MsgClass cls) {
  for (std::uint32_t d = 1; d <= 4; ++d) {
    const Guard& g = guard(tile, static_cast<Dir>(d), cls);
    if (g.busy && !g.delivered && g.in_port == in) return true;
  }
  return false;
}

bool MeshFaultDomain::link_busy(std::uint32_t tile, Dir out, MsgClass cls) {
  return guard(tile, out, cls).busy;
}

Cycle MeshFaultDomain::backoff(std::uint32_t retries) const {
  const std::uint32_t shift = retries < 16 ? retries : 16;
  const Cycle v = retry_base_ << shift;
  const Cycle cap = cfg_.backoff_cap > retry_base_ ? cfg_.backoff_cap
                                                   : retry_base_;
  return v < cap ? v : cap;
}

void MeshFaultDomain::attempt(std::uint32_t tile, Dir out, MsgClass cls,
                              Guard& g, Cycle now) {
  Link& l = link(tile, out);
  const Cycle wire_lat = noc_.router_latency + noc_.link_latency;
  fault::FrameFate fate = injector_.judge_frame(l.data_wire, now);
  if (fate.lost) {
    g.pending.push_back(fate.sender_event);
    g.had_fault = true;
  } else if (fate.garbled) {
    // The frame crossed but fails its checksum: the receiver discards it
    // on arrival and the sender's watchdog drives the retransmission.
    injector_.on_rx_discard(fate.garble_event,
                            now + wire_lat + fate.extra_delay);
    injector_.on_tolerated(fate.delay_event);
    g.had_fault = true;
  } else {
    const Cycle arrival = now + wire_lat + fate.extra_delay;
    if (!g.delivered) {
      Router& src = *routers_[tile];
      const Packet& head = src.peek_head(g.in_port, cls);
      if (out != xy_dir(tile, head.dst)) {
        ++counter(&fault::FaultStats::reroutes);
      }
      Packet p = src.take_head(g.in_port, cls);
      stats_.record_hop(p.cls, p.size_bytes);
      routers_[l.nbr]->accept(opposite(out), std::move(p), arrival);
      g.delivered = true;
    } else {
      // A retransmission whose original already made it across: the
      // receiver's sequence check filters the duplicate.
      ++counter(&fault::FaultStats::duplicate_frames);
    }
    injector_.on_tolerated(fate.delay_event);
    if (fate.extra_delay > 0) g.had_fault = true;
    // The ack leg, judged at the frame's arrival cycle (fates are pure
    // hashes of (wire, cycle), so judging ahead is sound).
    fault::FrameFate ack = injector_.judge_frame(l.ack_wire, arrival);
    if (ack.lost) {
      g.pending.push_back(ack.sender_event);
      g.had_fault = true;
    } else if (ack.garbled) {
      injector_.on_rx_discard(ack.garble_event,
                              arrival + noc_.link_latency + ack.extra_delay);
      injector_.on_tolerated(ack.delay_event);
      g.had_fault = true;
    } else {
      injector_.on_tolerated(ack.delay_event);
      if (ack.extra_delay > 0) g.had_fault = true;
      g.ack_at = arrival + noc_.link_latency + ack.extra_delay;
    }
  }
  g.retry_at = now + backoff(g.retries);
}

void MeshFaultDomain::start_transfer(std::uint32_t tile, Dir out, Dir in,
                                     MsgClass cls, Cycle now) {
  Link& l = link(tile, out);
  GLOCKS_CHECK(l.exists && !l.dead,
               "guarded transfer on a missing/dead link: tile "
                   << tile << " dir " << dir_letter(out));
  Guard& g = guard(tile, out, cls);
  GLOCKS_CHECK(!g.busy, "guarded transfer started on a busy link guard");
  g.busy = true;
  g.in_port = in;
  attempt(tile, out, cls, g, now);
}

void MeshFaultDomain::advance(Cycle now) {
  while (next_kill_ < kills_.size() && kills_[next_kill_].at <= now) {
    const LinkKill& k = kills_[next_kill_++];
    kill_link(k.tile, static_cast<Dir>(k.dir), now);
  }
  for (std::uint32_t t = 0; t < num_tiles_; ++t) {
    for (std::uint32_t d = 1; d <= 4; ++d) {
      const Dir dir = static_cast<Dir>(d);
      const Link& l = link(t, dir);
      if (!l.exists || l.dead) continue;
      for (std::size_t c = 0; c < kNumMsgClasses; ++c) {
        const auto cls = static_cast<MsgClass>(c);
        Guard& g = guard(t, dir, cls);
        if (!g.busy) continue;
        if (g.ack_at != kNoCycle && g.ack_at <= now) {
          // Acknowledged: the transfer is complete. Events still pending
          // here were superseded along the way (a drop whose later
          // duplicate carried the day): absorbed, not detected.
          for (std::int32_t ev : g.pending) injector_.on_tolerated(ev);
          g = Guard{};
          continue;
        }
        if (g.retry_at > now) continue;
        // Watchdog fired. An undelivered frame needs downstream room to
        // retransmit into; without it, hold the timer and re-check next
        // cycle (the mesh never sleeps while the domain is enabled).
        if (!g.delivered &&
            !routers_[l.nbr]->can_accept(opposite(dir), cls)) {
          continue;
        }
        ++counter(&fault::FaultStats::watchdog_timeouts);
        if (g.pending.empty() && !g.had_fault) {
          ++counter(&fault::FaultStats::spurious_retransmissions);
        }
        if (!g.pending.empty()) {
          injector_.on_detected(g.pending, now);
          g.pending.clear();
        }
        g.had_fault = false;
        ++g.retries;
        if (g.retries > cfg_.max_retries) {
          kill_link(t, dir, now);
          break;  // every guard on this link was just cleared
        }
        ++counter(&fault::FaultStats::retransmissions);
        attempt(t, dir, cls, g, now);
      }
    }
  }
}

void MeshFaultDomain::kill_link(std::uint32_t tile, Dir d, Cycle now) {
  Link& l = link(tile, d);
  GLOCKS_CHECK(l.exists, "kill on a non-existent link: tile "
                             << tile << " dir " << dir_letter(d));
  if (l.dead) return;  // scripted kill raced an ARQ-declared death
  l.dead = true;
  ++deaths_;
  ++counter(&fault::FaultStats::link_failures);
  injector_.on_wire_dead(l.data_wire, now);
  injector_.on_wire_dead(l.ack_wire, now);
  for (std::size_t c = 0; c < kNumMsgClasses; ++c) {
    Guard& g = guard(tile, d, static_cast<MsgClass>(c));
    if (g.busy && !g.pending.empty()) injector_.on_detected(g.pending, now);
    // An undelivered frame stays at its FIFO head; clearing the guard
    // unlocks it and the next arbitration re-routes it via the detour
    // table. A delivered-but-unacked frame already lives downstream.
    g = Guard{};
  }
  recompute_detours();
}

void MeshFaultDomain::recompute_detours() {
  detour_.assign(static_cast<std::size_t>(num_tiles_) * num_tiles_,
                 kUnreachable);
  constexpr std::uint32_t kInf = 0xFFFFFFFFu;
  constexpr Dir kOrder[4] = {Dir::kEast, Dir::kWest, Dir::kSouth,
                             Dir::kNorth};
  // Arbitrary shortest-path detours abandon XY's turn restrictions, and
  // with per-class stop-and-wait guards a cyclic channel dependency
  // wedges a faulted-but-connected mesh for good. Routes are therefore
  // constrained to the up*/down* turn model (Autonet): tiles are totally
  // ordered by (BFS level from the component's lowest-id tile, tile id),
  // every surviving edge points "up" toward its lower-ordered end, and a
  // legal route climbs zero or more up edges, then descends zero or more
  // down edges, never turning up again. Up-only dependency chains
  // strictly decrease the order, down-only chains strictly increase it,
  // and the down->up turn is forbidden, so no dependency cycle exists.
  //
  // An edge is usable only when the directed links of BOTH directions
  // survive: up*/down* traverses edges both ways, so a half-dead pair
  // is retired whole (conservative: a one-way-only path reads as a
  // partition instead of a route).
  auto edge_alive = [&](std::uint32_t t, Dir d) -> bool {
    const Link& f = link(t, d);
    if (!f.exists || f.dead) return false;
    const Link& b = link(f.nbr, opposite(d));
    return b.exists && !b.dead;
  };

  std::vector<std::uint32_t> level(num_tiles_, kInf);
  std::vector<std::uint32_t> q;
  q.reserve(num_tiles_);
  for (std::uint32_t root = 0; root < num_tiles_; ++root) {
    if (level[root] != kInf) continue;
    level[root] = 0;
    q.clear();
    q.push_back(root);
    for (std::size_t head = 0; head < q.size(); ++head) {
      const std::uint32_t v = q[head];
      for (Dir d : kOrder) {
        if (!edge_alive(v, d)) continue;
        const std::uint32_t n = link(v, d).nbr;
        if (level[n] != kInf) continue;
        level[n] = level[v] + 1;
        q.push_back(n);
      }
    }
  }
  // a strictly closer to the root than b (ties by id keep it total).
  auto above = [&](std::uint32_t a, std::uint32_t b) {
    return level[a] != level[b] ? level[a] < level[b] : a < b;
  };
  // Tiles in root-most-first order; up neighbors always precede a tile.
  std::vector<std::uint32_t> order(num_tiles_);
  for (std::uint32_t t = 0; t < num_tiles_; ++t) order[t] = t;
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) { return above(a, b); });

  std::vector<std::uint32_t> ddist(num_tiles_);
  std::vector<std::uint32_t> udist(num_tiles_);
  for (std::uint32_t dst = 0; dst < num_tiles_; ++dst) {
    // ddist[x]: shortest down-only path x -> dst (reverse BFS from dst
    // over down edges). The root's down-cone spans its whole component
    // (every BFS-tree edge points down from parent to child).
    std::fill(ddist.begin(), ddist.end(), kInf);
    ddist[dst] = 0;
    q.clear();
    q.push_back(dst);
    for (std::size_t head = 0; head < q.size(); ++head) {
      const std::uint32_t v = q[head];
      for (Dir d : kOrder) {
        if (!edge_alive(v, d)) continue;
        const std::uint32_t n = link(v, d).nbr;
        if (!above(n, v) || ddist[n] != kInf) continue;
        ddist[n] = ddist[v] + 1;
        q.push_back(n);
      }
    }
    // udist[x]: up hops to the nearest tile whose down-cone holds dst.
    // Up neighbors sit strictly earlier in the order, so one pass does.
    for (const std::uint32_t x : order) {
      if (ddist[x] != kInf) {
        udist[x] = 0;
        continue;
      }
      udist[x] = kInf;
      for (Dir d : kOrder) {
        if (!edge_alive(x, d)) continue;
        const std::uint32_t n = link(x, d).nbr;
        if (!above(n, x)) continue;
        if (udist[n] != kInf && udist[n] + 1 < udist[x]) {
          udist[x] = udist[n] + 1;
        }
      }
    }
    // Next hops. A tile descends as soon as dst is downhill-reachable;
    // the rule is suffix-closed (every down hop lands on a tile that
    // also descends), so a pure (tile, dst) table keeps every realized
    // path legal.
    for (std::uint32_t t = 0; t < num_tiles_; ++t) {
      if (t == dst) continue;
      std::uint8_t hop = kUnreachable;
      if (ddist[t] != kInf) {
        for (Dir d : kOrder) {
          if (!edge_alive(t, d)) continue;
          const std::uint32_t n = link(t, d).nbr;
          if (above(t, n) && ddist[n] + 1 == ddist[t]) {
            hop = static_cast<std::uint8_t>(d);
            break;
          }
        }
      } else if (udist[t] != kInf) {
        for (Dir d : kOrder) {
          if (!edge_alive(t, d)) continue;
          const std::uint32_t n = link(t, d).nbr;
          if (above(n, t) && udist[n] + 1 == udist[t]) {
            hop = static_cast<std::uint8_t>(d);
            break;
          }
        }
      }
      detour_[static_cast<std::size_t>(t) * num_tiles_ + dst] = hop;
    }
  }
}

fault::FaultStats MeshFaultDomain::finalize_stats() {
  injector_.finalize();
  return injector_.stats();
}

std::string MeshFaultDomain::context() const {
  if (deaths_ == 0) return "none";
  std::ostringstream oss;
  bool first = true;
  for (std::uint32_t t = 0; t < num_tiles_; ++t) {
    for (std::uint32_t d = 1; d <= 4; ++d) {
      const Link& l = link(t, static_cast<Dir>(d));
      if (!l.exists || !l.dead) continue;
      if (!first) oss << ", ";
      first = false;
      oss << t << '-' << dir_letter(static_cast<Dir>(d)) << "->" << l.nbr;
    }
  }
  return oss.str();
}

std::string MeshFaultDomain::debug_dump() const {
  std::ostringstream oss;
  oss << "  dead links (" << deaths_ << "): " << context() << "\n";
  for (std::uint32_t t = 0; t < num_tiles_; ++t) {
    for (std::uint32_t d = 1; d <= 4; ++d) {
      const Dir dir = static_cast<Dir>(d);
      for (std::size_t c = 0; c < kNumMsgClasses; ++c) {
        const Guard& g = guard(t, dir, static_cast<MsgClass>(c));
        if (!g.busy) continue;
        oss << "  guard " << t << '-' << dir_letter(dir) << ' '
            << to_string(static_cast<MsgClass>(c))
            << ": delivered=" << (g.delivered ? 1 : 0)
            << " retries=" << g.retries << " retry_at=" << g.retry_at
            << " ack_at=";
        if (g.ack_at == kNoCycle) {
          oss << '-';
        } else {
          oss << g.ack_at;
        }
        oss << "\n";
      }
    }
  }
  return oss.str();
}

void MeshFaultDomain::save(ckpt::ArchiveWriter& a) const {
  injector_.save(a);
  a.u64(deaths_);
  for (const Link& l : links_) a.b(l.dead);
  a.u64(next_kill_);
  for (const Guard& g : guards_) {
    a.b(g.busy);
    a.b(g.delivered);
    a.b(g.had_fault);
    a.u8(static_cast<std::uint8_t>(g.in_port));
    a.u64(g.ack_at);
    a.u64(g.retry_at);
    a.u32(g.retries);
    a.u32(static_cast<std::uint32_t>(g.pending.size()));
    for (std::int32_t ev : g.pending) a.i64(ev);
  }
}

void MeshFaultDomain::load(ckpt::ArchiveReader& a) {
  injector_.load(a);
  deaths_ = a.u64();
  for (Link& l : links_) l.dead = a.b();
  next_kill_ = a.u64();
  for (Guard& g : guards_) {
    g.busy = a.b();
    g.delivered = a.b();
    g.had_fault = a.b();
    g.in_port = static_cast<Dir>(a.u8());
    g.ack_at = a.u64();
    g.retry_at = a.u64();
    g.retries = a.u32();
    g.pending.clear();
    const std::uint32_t n = a.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      g.pending.push_back(static_cast<std::int32_t>(a.i64()));
    }
  }
  if (deaths_ > 0) recompute_detours();
}

}  // namespace glocks::noc
