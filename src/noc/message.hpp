// On-chip network message types and traffic accounting.
//
// Traffic is accounted in the three categories of paper Figure 9:
//   Request   — L1 miss requests travelling to a home directory,
//   Reply     — any message carrying a full cache line of data,
//   Coherence — invalidations, acks, forwards, upgrades and other
//               protocol-control messages.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/types.hpp"

namespace glocks::noc {

enum class MsgClass : std::uint8_t { kRequest = 0, kReply = 1, kCoherence = 2 };
inline constexpr std::size_t kNumMsgClasses = 3;

constexpr std::string_view to_string(MsgClass c) {
  switch (c) {
    case MsgClass::kRequest:
      return "Request";
    case MsgClass::kReply:
      return "Reply";
    case MsgClass::kCoherence:
      return "Coherence";
  }
  return "?";
}

/// Discriminates the opaque payload pointer a Packet carries. The NoC
/// never dereferences payloads; the tag lets the endpoint that installed
/// the pointer recover its type without virtual dispatch (payload nodes
/// live in typed pools and must stay trivially destructible, so the old
/// `struct PacketData { virtual ~PacketData(); }` base is gone).
enum class PayloadKind : std::uint8_t {
  kNone = 0,    ///< payload is null (raw NoC traffic, tests)
  kCohMsg = 1,  ///< mem::CohMsg owned by the hierarchy's message pool
};

/// One network message. With 75-byte links (Table II) every message fits a
/// single flit, so a Packet is also the unit of link bandwidth.
///
/// Trivially copyable by design: packets move through pooled ring
/// buffers by value. Ownership of `payload` rides along informally —
/// exactly one copy of a given seq is ever live in the fabric, and the
/// sink that receives it re-wraps the pointer into its owning pool.
/// `seq` is assigned fresh by Mesh::send for every injection (never
/// recycled from a pooled payload node), so traces stay unambiguous
/// even when the same payload storage is reused; debug builds check the
/// counter cannot wrap within a run.
struct Packet {
  CoreId src = 0;
  CoreId dst = 0;
  MsgClass cls = MsgClass::kRequest;
  PayloadKind kind = PayloadKind::kNone;
  std::uint32_t size_bytes = 0;
  std::uint64_t seq = 0;  ///< Unique per-mesh id, for debugging/tracing.
  void* payload = nullptr;
};

/// Byte/packet/hop counts per message class. The paper's Figure 9 metric
/// is bytes summed over every switch a message traverses, so `bytes` is
/// incremented once per hop.
class TrafficStats {
 public:
  void record_hop(MsgClass c, std::uint32_t bytes) {
    bytes_[idx(c)] += bytes;
    ++hops_[idx(c)];
  }
  void record_injection(MsgClass c) { ++packets_[idx(c)]; }
  /// Checkpoint restore only: overwrites one class's totals wholesale.
  void set(MsgClass c, std::uint64_t bytes, std::uint64_t packets,
           std::uint64_t hops) {
    bytes_[idx(c)] = bytes;
    packets_[idx(c)] = packets;
    hops_[idx(c)] = hops;
  }

  std::uint64_t bytes(MsgClass c) const { return bytes_[idx(c)]; }
  std::uint64_t packets(MsgClass c) const { return packets_[idx(c)]; }
  std::uint64_t hops(MsgClass c) const { return hops_[idx(c)]; }
  std::uint64_t total_bytes() const {
    return bytes_[0] + bytes_[1] + bytes_[2];
  }
  std::uint64_t total_hops() const { return hops_[0] + hops_[1] + hops_[2]; }
  std::uint64_t total_packets() const {
    return packets_[0] + packets_[1] + packets_[2];
  }

 private:
  static std::size_t idx(MsgClass c) { return static_cast<std::size_t>(c); }
  std::array<std::uint64_t, kNumMsgClasses> bytes_{};
  std::array<std::uint64_t, kNumMsgClasses> packets_{};
  std::array<std::uint64_t, kNumMsgClasses> hops_{};
};

}  // namespace glocks::noc
