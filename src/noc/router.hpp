// A 5-port 2D-mesh router with XY dimension-order routing and one
// virtual channel per message class.
//
// Model: one bounded FIFO per (input port, message class); each cycle
// every output port forwards at most one packet, arbitrated round-robin
// across (port, class) pairs, so a burst of Coherence traffic cannot
// head-of-line-block Replies sharing the port. Messages of one class
// between one (source, destination) pair still deliver in FIFO order —
// the ordering property the protocol relies on. A forwarded packet
// becomes visible at the next router after router_latency + link_latency
// cycles; a packet routed to the local port is handed to the tile's sink
// after router_latency cycles.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "common/ring_buffer.hpp"
#include "common/types.hpp"
#include "noc/message.hpp"

namespace glocks::ckpt {
class ArchiveWriter;
class ArchiveReader;
}  // namespace glocks::ckpt

namespace glocks::noc {

enum class Dir : std::uint8_t {
  kLocal = 0,
  kNorth = 1,
  kSouth = 2,
  kEast = 3,
  kWest = 4
};
inline constexpr std::size_t kNumDirs = 5;

constexpr Dir opposite(Dir d) {
  switch (d) {
    case Dir::kNorth:
      return Dir::kSouth;
    case Dir::kSouth:
      return Dir::kNorth;
    case Dir::kEast:
      return Dir::kWest;
    case Dir::kWest:
      return Dir::kEast;
    case Dir::kLocal:
      return Dir::kLocal;
  }
  return Dir::kLocal;
}

struct RouterTiming {
  Cycle router_latency = 3;
  Cycle link_latency = 1;
  std::uint32_t input_queue_depth = 16;
};

/// Serializes/deserializes the opaque payload a Packet carries. The NoC
/// cannot interpret `Packet::payload` itself (the pointee lives in a
/// typed pool owned by the memory hierarchy), so whoever owns the pools
/// supplies the codec: `save` drains the pointee to portable bytes,
/// `load` re-acquires a pool node and installs the pointer. Both are
/// keyed off the packet's PayloadKind tag.
struct PayloadCodec {
  std::function<void(ckpt::ArchiveWriter&, const Packet&)> save;
  std::function<void(ckpt::ArchiveReader&, Packet&)> load;
  /// Releases a live payload back to its pool; load() calls this on
  /// every packet it is about to discard so node accounting stays exact.
  std::function<void(Packet&)> drop;
};

/// Portable packet encoding: every field except the raw payload pointer,
/// then the payload bytes via the codec.
void save_packet(ckpt::ArchiveWriter& a, const Packet& p,
                 const PayloadCodec& codec);
Packet load_packet(ckpt::ArchiveReader& a, const PayloadCodec& codec);

/// Hooks the router consults when the mesh fault domain is enabled
/// (faults-off runs carry a null pointer and take the exact baseline
/// paths). Implemented by noc::MeshFaultDomain, which owns the link
/// guards (stop-and-wait ARQ per directed link and message class), the
/// dead-link set, and the detour routing tables.
class LinkFaultModel {
 public:
  virtual ~LinkFaultModel() = default;
  /// Routing decision for `dst` at `tile`: XY while every link is alive,
  /// the detour table once any link has died. Returns kNumDirs when the
  /// destination is currently unreachable (the head must hold; the
  /// end-to-end watchdog at the MSHR layer is the escape hatch).
  virtual std::uint32_t next_hop(std::uint32_t tile, std::uint32_t dst) = 0;
  /// True when the head of input queue (in, cls) at `tile` is owned by a
  /// busy link guard (an in-flight, not-yet-acknowledged frame):
  /// arbitration must leave it queued until the guard resolves.
  virtual bool head_locked(std::uint32_t tile, Dir in, MsgClass cls) = 0;
  /// True when the (tile, out, cls) guard is mid-transfer: no new frame
  /// may start on that link/class this cycle (stop-and-wait).
  virtual bool link_busy(std::uint32_t tile, Dir out, MsgClass cls) = 0;
  /// Starts a guarded transfer of the head of (in, cls) through `out`.
  /// The model judges the link fate: on delivery it moves the packet
  /// into the downstream router itself (capacity pre-checked by the
  /// caller); on loss/garble the head stays queued and the guard's
  /// retransmission watchdog takes over. Either way the output port is
  /// consumed for this cycle.
  virtual void start_transfer(std::uint32_t tile, Dir out, Dir in,
                              MsgClass cls, Cycle now) = 0;
};

/// Staging hooks for output links that cross a shard-region boundary.
/// When the mesh is region-sharded, a router whose neighbor in some
/// direction belongs to another shard must not touch that neighbor's
/// FIFOs mid-window (they are owned by another thread). Instead the
/// forward is staged with the mesh, which delivers it at the next window
/// boundary — before the entry's ready cycle, so arbitration bytes are
/// unchanged. Implemented by noc::Mesh.
class BoundaryStager {
 public:
  /// Capacity check standing in for the downstream can_accept(): must
  /// never accept when the serial scan would have hit backpressure.
  virtual bool boundary_can_accept(std::int32_t link, MsgClass cls) const = 0;
  /// Stages the packet for delivery into the downstream FIFO with the
  /// given ready cycle (now + router_latency + link_latency).
  virtual void boundary_stage(std::int32_t link, Packet&& p, Cycle ready) = 0;

 protected:
  ~BoundaryStager() = default;
};

class Router {
 public:
  using Sink = std::function<void(Packet&&)>;

  /// `x`,`y` — mesh coordinates; `mesh_w` — mesh width for XY routing.
  Router(std::uint32_t x, std::uint32_t y, std::uint32_t mesh_w,
         RouterTiming timing, TrafficStats& stats);

  std::uint32_t x() const { return x_; }
  std::uint32_t y() const { return y_; }
  /// Tile id in the mesh's row-major layout.
  std::uint32_t tile() const { return y_ * mesh_w_ + x_; }

  /// Arms the mesh fault domain's hooks (null = faults-off baseline).
  void set_fault_model(LinkFaultModel* m) { fault_ = m; }

  /// Wires the output in direction `d` to `neighbor` (non-owning).
  void connect(Dir d, Router& neighbor) { neighbors_[idx(d)] = &neighbor; }
  /// Registers the callback receiving packets addressed to this tile.
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Attempts to place a locally-injected packet into the local input
  /// port; returns false when that FIFO is full. The packet becomes
  /// routable next cycle.
  bool inject(Packet&& p, Cycle now);

  /// Called by the upstream router when it forwards a packet here.
  /// Capacity must have been checked with can_accept() in the same cycle.
  void accept(Dir in, Packet&& p, Cycle ready);
  bool can_accept(Dir in, MsgClass cls) const;

  /// One cycle of arbitration + forwarding + local delivery. The
  /// round-robin pointer advances only on cycles where the router had at
  /// least one ready head (an input-FIFO head or pending local delivery
  /// with ready <= now) — an idle tick has no architectural effect at
  /// all, so skipped, folded, or per-region-skipped cycles are exact.
  void tick(Cycle now);

  /// Credits one busy-tick's round-robin rotation without ticking. Used
  /// by the mesh's express path: a virtual flight's switch traversal (or
  /// final local delivery) at this router is exactly one cycle on which
  /// the hop-by-hop scan would have seen a ready head.
  void credit_busy_tick() { rr_ = (rr_ + 1) % kSlots; }

  /// True when every queue (inputs and pending local deliveries) is empty.
  bool idle() const { return occupancy_ == 0; }
  /// Packets resident in this router (all input FIFOs + local_out_).
  std::uint32_t occupancy() const { return occupancy_; }

  /// Live depth of one input FIFO (window-planner headroom checks).
  std::uint32_t queue_size(Dir in, MsgClass cls) const {
    return static_cast<std::uint32_t>(
        in_[idx(in)][static_cast<std::size_t>(cls)].size());
  }
  /// Earliest ready cycle across the input-FIFO heads, or kNoCycle when
  /// every input FIFO is empty. Within one FIFO ready cycles are
  /// monotone (every entry path adds a fixed latency to an increasing
  /// push cycle), so the heads bound the whole router.
  Cycle earliest_input_ready() const;
  /// Ready cycle of the oldest pending local delivery (kNoCycle if none).
  Cycle local_head_ready() const {
    return local_out_.empty() ? kNoCycle : local_out_.front().ready;
  }

  /// Decides the output direction for a packet destined to tile coords.
  Dir route(std::uint32_t dst_x, std::uint32_t dst_y) const;

  /// Express materialization (Mesh only): places a packet directly into
  /// an input FIFO with an explicit ready cycle — exactly the entry the
  /// hop-by-hop path would hold at this point. Records no statistics;
  /// the Mesh credits the hops already "performed" itself. Capacity is
  /// checked: the express reservation ledger guarantees room.
  void place(Dir in, MsgClass cls, Packet&& p, Cycle ready);
  /// Same, for the local ejection queue (a flight past its last switch).
  void place_local(Packet&& p, Cycle ready);

  /// Marks the output in direction `d` as crossing a shard-region
  /// boundary: forwards through it are staged with `s` under `link`
  /// instead of pushed into the neighbor directly. Never combined with
  /// the fault domain (fault-armed runs keep the serial coordinator).
  void set_boundary(BoundaryStager* s, Dir d, std::int32_t link) {
    stager_ = s;
    blink_[idx(d)] = link;
  }
  void clear_boundaries() {
    stager_ = nullptr;
    blink_.fill(-1);
  }

  /// Redirects traffic statistics into `s` (e.g. a per-region bucket so
  /// concurrent region ticks never race on the shared totals). Pass the
  /// mesh-global stats to restore the default.
  void rebind_stats(TrafficStats* s) { stats_ = s; }

  /// Fault-domain access to a guarded queue head: the guard inspects the
  /// in-flight frame (peek) and removes it on successful link delivery
  /// (take). Only meaningful while a guard owns the head.
  const Packet& peek_head(Dir in, MsgClass cls) const;
  Packet take_head(Dir in, MsgClass cls);

  /// Serializes queue contents (front-to-back, with ready cycles), the
  /// round-robin pointer, and the occupancy counter. Payload pointees go
  /// through `codec`; geometry/wiring is reconstructed by the builder.
  void save(ckpt::ArchiveWriter& a, const PayloadCodec& codec) const;
  void load(ckpt::ArchiveReader& a, const PayloadCodec& codec);

 private:
  struct Timed {
    Cycle ready = 0;
    Packet pkt;
  };

  static constexpr std::size_t kSlots = kNumDirs * kNumMsgClasses;

  static std::size_t idx(Dir d) { return static_cast<std::size_t>(d); }
  void forward(Dir out, Packet&& p, Cycle now);

  std::uint32_t x_, y_, mesh_w_;
  RouterTiming timing_;
  TrafficStats* stats_;
  /// Input FIFOs: [port][virtual channel (message class)]. Ring buffers
  /// grow to input_queue_depth once and then cycle allocation-free; the
  /// logical depth bound is enforced here, not by the ring.
  std::array<std::array<common::RingBuffer<Timed>, kNumMsgClasses>, kNumDirs>
      in_;
  std::array<Router*, kNumDirs> neighbors_{};
  common::RingBuffer<Timed> local_out_;
  Sink sink_;
  std::uint32_t rr_ = 0;  ///< round-robin start index for input arbitration
  LinkFaultModel* fault_ = nullptr;  ///< mesh fault domain hooks (may be null)
  BoundaryStager* stager_ = nullptr;  ///< region-boundary staging (may be null)
  /// Per-direction boundary link id with `stager_`, or -1 for a direct
  /// (same-region) link.
  std::array<std::int32_t, kNumDirs> blink_{{-1, -1, -1, -1, -1}};
  /// Packets resident in this router (all input FIFOs + local_out_); lets
  /// an idle tick skip the kSlots arbitration scan entirely.
  std::uint32_t occupancy_ = 0;
};

}  // namespace glocks::noc
