#include "trace/tracer.hpp"

#include <algorithm>

namespace glocks::trace {

namespace {

/// Minimal JSON string escaping (event names are ASCII identifiers, but
/// workload-provided lock names could contain anything).
void write_escaped(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

void Tracer::write_chrome_json(std::ostream& os) const {
  os << "[";
  bool first = true;
  for (const auto& e : events_) {
    if (!first) os << ",\n";
    first = false;
    os << R"({"name":")";
    write_escaped(os, e.name);
    os << R"(","ph":"X","pid":0,"tid":)" << e.tid << R"(,"ts":)" << e.begin
       << R"(,"dur":)" << (e.end - e.begin) << "}";
  }
  os << "]\n";
}

void Tracer::write_text(std::ostream& os) const {
  std::vector<const Event*> sorted;
  sorted.reserve(events_.size());
  for (const auto& e : events_) sorted.push_back(&e);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Event* a, const Event* b) {
                     return a->begin < b->begin;
                   });
  for (const Event* e : sorted) {
    os << "[" << e->begin;
    if (e->end != e->begin) os << ".." << e->end;
    os << "] t" << e->tid << " " << e->name << "\n";
  }
  if (dropped_ > 0) os << "(" << dropped_ << " events dropped)\n";
}

}  // namespace glocks::trace
