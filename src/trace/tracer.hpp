// Event tracing: records synchronization-level events during a run and
// exports them as Chrome trace JSON (load in chrome://tracing or Perfetto)
// or plain text. Tracing is off unless a Tracer is attached, and costs
// nothing in simulated time — it observes the run, never perturbs it.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace glocks::trace {

/// One recorded event. Duration events have end >= begin; instants have
/// end == begin.
struct Event {
  Cycle begin = 0;
  Cycle end = 0;
  std::uint32_t tid = 0;   ///< simulated thread / hardware track
  std::string name;
};

class Tracer {
 public:
  /// `capacity` bounds memory; once full, further events are counted as
  /// dropped rather than recorded.
  explicit Tracer(std::size_t capacity = 1 << 20) : capacity_(capacity) {}

  void complete(std::uint32_t tid, Cycle begin, Cycle end,
                std::string name) {
    if (events_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    events_.push_back(Event{begin, end, tid, std::move(name)});
  }

  void instant(std::uint32_t tid, Cycle at, std::string name) {
    complete(tid, at, at, std::move(name));
  }

  const std::vector<Event>& events() const { return events_; }
  std::uint64_t dropped() const { return dropped_; }

  /// Chrome trace-event JSON ("X" phase complete events; 1 cycle = 1 us
  /// on the trace timeline so Perfetto's zoom is usable).
  void write_chrome_json(std::ostream& os) const;

  /// One line per event, sorted by begin cycle.
  void write_text(std::ostream& os) const;

 private:
  std::size_t capacity_;
  std::vector<Event> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace glocks::trace
