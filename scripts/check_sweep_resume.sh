#!/usr/bin/env bash
# Cross-process checkpoint/restore smoke — the two resume paths the
# in-process suites cannot cover, exercised through the real binaries:
#
#   1. Sweep resume: run a grid uninterrupted; run it again under
#      `timeout -s KILL` with --manifest so the process dies mid-grid
#      (SIGKILL — no destructors, the crash the manifest format is built
#      for); resume with the same command and require the concatenated
#      CSV byte-identical to the uninterrupted one.
#   2. Run restore: checkpoint a glocksim run every N cycles, then
#      --restore each file in a fresh process and require the report
#      CSV byte-identical to the uninterrupted run's.
#
# Usage: scripts/check_sweep_resume.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
SWEEP="$BUILD_DIR/src/tools/glocks-sweep"
SIM="$BUILD_DIR/src/tools/glocksim"
WORK="$BUILD_DIR/ckpt-smoke"

cmake --build "$BUILD_DIR" -j "$(nproc)" --target glocks-sweep glocksim
rm -rf "$WORK"
mkdir -p "$WORK"

GRID=(--workloads SCTR,MCTR --locks mcs,glock --cores 8,16
      --seeds 1,2 --scale 0.25 --jobs 2)

# --- 1. sweep resume -------------------------------------------------
"$SWEEP" "${GRID[@]}" > "$WORK/base.csv"

# Kill the manifest-backed sweep mid-grid. If the machine is fast enough
# to finish inside the timeout, the resume below still has to reproduce
# the CSV from a complete manifest — the check stays meaningful.
timeout -s KILL 2 "$SWEEP" "${GRID[@]}" --manifest "$WORK/sweep.manifest" \
  > /dev/null 2> "$WORK/killed.err" || true
[[ -s "$WORK/sweep.manifest" ]] || {
  echo "FAIL: killed sweep left no manifest behind" >&2; exit 1; }

"$SWEEP" "${GRID[@]}" --manifest "$WORK/sweep.manifest" \
  > "$WORK/resumed.csv" 2> "$WORK/resumed.err"
cmp "$WORK/base.csv" "$WORK/resumed.csv" || {
  echo "FAIL: resumed sweep CSV differs from the uninterrupted run" >&2
  exit 1; }

# --- 2. glocksim restore --------------------------------------------
RUN=(--workload SCTR --cores 8 --scale 0.25 --lock glock --csv)
"$SIM" "${RUN[@]}" > "$WORK/run.csv"
"$SIM" "${RUN[@]}" --checkpoint-every 1500 --checkpoint-dir "$WORK" \
  > "$WORK/ckpt-run.csv" 2> "$WORK/ckpt-run.err"
cmp "$WORK/run.csv" "$WORK/ckpt-run.csv" || {
  echo "FAIL: checkpointing perturbed the run" >&2; exit 1; }

found=0
for f in "$WORK"/SCTR-*.ckpt; do
  [[ -e "$f" ]] || break
  found=$((found + 1))
  "$SIM" --restore "$f" --csv > "$WORK/restored.csv"
  cmp "$WORK/run.csv" "$WORK/restored.csv" || {
    echo "FAIL: restore from $f diverged from the uninterrupted run" >&2
    exit 1; }
done
[[ "$found" -ge 1 ]] || {
  echo "FAIL: --checkpoint-every wrote no checkpoint files" >&2; exit 1; }

echo "sweep-resume smoke passed ($found checkpoint(s) restored)."
