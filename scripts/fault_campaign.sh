#!/usr/bin/env bash
# Fault-injection campaign: sweeps fault rates across lock kinds and
# reports, per (rate, lock) cell, how the machine coped — completion
# rate, fallback demotions/acquires, and mean fault-detection latency.
#
# Each cell is one `glocks-sweep --faults` invocation, so every grid
# point inside it (workload x seed) runs on the shared worker pool from
# src/exec and the per-cell CSV is deterministic. A bare rate R applies
# to all four transient fault kinds with stuck-at rate R/10, so higher
# rates also exercise the demotion path. If a cell's sweep aborts (a
# genuine hang — injected faults themselves must never cause one), the
# rows it emitted before the abort still count as completed runs, which
# is exactly what the completion_rate column measures.
#
# Usage: scripts/fault_campaign.sh [out.csv]      (default: stdout)
# Knobs (environment): RATES LOCKS WORKLOADS SEEDS CORES SCALE JOBS SWEEP
set -euo pipefail
cd "$(dirname "$0")/.."

SWEEP="${SWEEP:-build/src/tools/glocks-sweep}"
RATES="${RATES:-0.0001 0.001 0.01}"
LOCKS="${LOCKS:-glock mcs}"
WORKLOADS="${WORKLOADS:-SCTR,MCTR,ACTR}"
SEEDS="${SEEDS:-1,2,3}"
CORES="${CORES:-16}"
SCALE="${SCALE:-0.25}"
JOBS="${JOBS:-$(nproc)}"

if [[ ! -x "$SWEEP" ]]; then
  echo "fault_campaign: $SWEEP not found — build first (cmake --build build)" >&2
  exit 1
fi

OUT="${1:-/dev/stdout}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

expected=$(( $(tr ',' '\n' <<<"$WORKLOADS" | grep -c .) \
           * $(tr ',' '\n' <<<"$SEEDS" | grep -c .) ))

echo "fault_rate,lock,runs_expected,runs_completed,completion_rate,fallback_demotions,fallback_acquires,mean_detect_latency" > "$OUT"
for rate in $RATES; do
  for lock in $LOCKS; do
    status=0
    "$SWEEP" --workloads "$WORKLOADS" --locks "$lock" --cores "$CORES" \
             --seeds "$SEEDS" --scale "$SCALE" --jobs "$JOBS" \
             --faults "$rate" > "$TMP" 2>/dev/null || status=$?
    awk -F, -v rate="$rate" -v lock="$lock" -v expected="$expected" '
      NR == 1 { for (i = 1; i <= NF; i++) col[$i] = i; next }
      {
        n++
        dem += $col["fallback_demotions"]
        acq += $col["fallback_acquires"]
        lat += $col["mean_detect_latency"]
      }
      END {
        printf "%s,%s,%d,%d,%.4f,%d,%d,%.3f\n", rate, lock, expected, n,
               expected ? n / expected : 0, dem, acq, n ? lat / n : 0
      }' "$TMP" >> "$OUT"
    if [[ $status -ne 0 ]]; then
      echo "fault_campaign: rate=$rate lock=$lock aborted (exit $status)" >&2
    fi
  done
done
