#!/usr/bin/env bash
# Fault-injection campaign: sweeps fault rates across lock kinds and
# reports, per (rate, lock) cell, how the machine coped — completion
# rate, fallback demotions/acquires, and mean fault-detection latency.
#
# Each cell is one `glocks-sweep --faults` invocation, so every grid
# point inside it (workload x seed) runs on the shared worker pool from
# src/exec and the per-cell CSV is deterministic. A bare rate R applies
# to all four transient fault kinds with stuck-at rate R/10, so higher
# rates also exercise the demotion path. If a cell's sweep aborts (a
# genuine hang — injected faults themselves must never cause one), the
# rows it emitted before the abort still count as completed runs, which
# is exactly what the completion_rate column measures.
#
# A second table then sweeps the MESH fault domain (mesh:rate=R arms
# drop=garble=delay=R and dead=R/10 on every mesh link): per cell it
# reports completion rate, ARQ retransmissions, dead links + detoured
# forwards, e2e watchdog retries, and the mean latency the recovery
# machinery added over a clean baseline of the same grid
# (mean_added_latency, in cycles).
#
# Usage: scripts/fault_campaign.sh [out.csv]      (default: stdout)
# Knobs (environment): RATES MESH_RATES LOCKS WORKLOADS SEEDS CORES
#                      SCALE JOBS SWEEP
set -euo pipefail
cd "$(dirname "$0")/.."

SWEEP="${SWEEP:-build/src/tools/glocks-sweep}"
RATES="${RATES:-0.0001 0.001 0.01}"
MESH_RATES="${MESH_RATES:-0.0001 0.001 0.005}"
LOCKS="${LOCKS:-glock mcs}"
WORKLOADS="${WORKLOADS:-SCTR,MCTR,ACTR}"
SEEDS="${SEEDS:-1,2,3}"
CORES="${CORES:-16}"
SCALE="${SCALE:-0.25}"
JOBS="${JOBS:-$(nproc)}"

if [[ ! -x "$SWEEP" ]]; then
  echo "fault_campaign: $SWEEP not found — build first (cmake --build build)" >&2
  exit 1
fi

OUT="${1:-/dev/stdout}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

expected=$(( $(tr ',' '\n' <<<"$WORKLOADS" | grep -c .) \
           * $(tr ',' '\n' <<<"$SEEDS" | grep -c .) ))

echo "fault_rate,lock,runs_expected,runs_completed,completion_rate,fallback_demotions,fallback_acquires,mean_detect_latency" > "$OUT"
for rate in $RATES; do
  for lock in $LOCKS; do
    status=0
    "$SWEEP" --workloads "$WORKLOADS" --locks "$lock" --cores "$CORES" \
             --seeds "$SEEDS" --scale "$SCALE" --jobs "$JOBS" \
             --faults "$rate" > "$TMP" 2>/dev/null || status=$?
    awk -F, -v rate="$rate" -v lock="$lock" -v expected="$expected" '
      NR == 1 { for (i = 1; i <= NF; i++) col[$i] = i; next }
      {
        n++
        dem += $col["fallback_demotions"]
        acq += $col["fallback_acquires"]
        lat += $col["mean_detect_latency"]
      }
      END {
        printf "%s,%s,%d,%d,%.4f,%d,%d,%.3f\n", rate, lock, expected, n,
               expected ? n / expected : 0, dem, acq, n ? lat / n : 0
      }' "$TMP" >> "$OUT"
    if [[ $status -ne 0 ]]; then
      echo "fault_campaign: rate=$rate lock=$lock aborted (exit $status)" >&2
    fi
  done
done

# ---------------------------------------------------------------------
# Mesh fault domain. Clean (faults-off) baseline first, per lock, to
# price the recovery machinery: mean_added_latency is this cell's mean
# cycles minus the same grid's clean mean.
declare -A BASE_CYCLES
for lock in $LOCKS; do
  "$SWEEP" --workloads "$WORKLOADS" --locks "$lock" --cores "$CORES" \
           --seeds "$SEEDS" --scale "$SCALE" --jobs "$JOBS" > "$TMP"
  BASE_CYCLES[$lock]=$(awk -F, '
    NR == 1 { for (i = 1; i <= NF; i++) col[$i] = i; next }
    { n++; c += $col["cycles"] }
    END { printf "%.3f", n ? c / n : 0 }' "$TMP")
done

echo "" >> "$OUT"
echo "mesh_rate,lock,runs_expected,runs_completed,completion_rate,mesh_retransmissions,mesh_dead_links,mesh_reroutes,e2e_retries,mean_cycles,mean_added_latency" >> "$OUT"
for rate in $MESH_RATES; do
  for lock in $LOCKS; do
    status=0
    "$SWEEP" --workloads "$WORKLOADS" --locks "$lock" --cores "$CORES" \
             --seeds "$SEEDS" --scale "$SCALE" --jobs "$JOBS" \
             --faults "mesh:rate=$rate" > "$TMP" 2>/dev/null || status=$?
    awk -F, -v rate="$rate" -v lock="$lock" -v expected="$expected" \
        -v base="${BASE_CYCLES[$lock]}" '
      NR == 1 { for (i = 1; i <= NF; i++) col[$i] = i; next }
      {
        n++
        cyc += $col["cycles"]
        rtx += $col["mesh_retransmissions"]
        dead += $col["mesh_dead_links"]
        rr += $col["mesh_reroutes"]
        e2e += $col["e2e_retries"]
      }
      END {
        printf "%s,%s,%d,%d,%.4f,%d,%d,%d,%d,%.3f,%.3f\n",
               rate, lock, expected, n, expected ? n / expected : 0,
               rtx, dead, rr, e2e, n ? cyc / n : 0,
               n ? cyc / n - base : 0
      }' "$TMP" >> "$OUT"
    if [[ $status -ne 0 ]]; then
      echo "fault_campaign: mesh rate=$rate lock=$lock aborted (exit $status)" >&2
    fi
  done
done
