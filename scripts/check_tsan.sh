#!/usr/bin/env bash
# ThreadSanitizer gate for both layers of host parallelism.
#
# Two distinct thread populations exist in the simulator. src/exec fans
# independent runs out across pool workers; src/sim/shard.cpp shards ONE
# machine across workers in lockstep (the mesh staging buffers, pool
# spinlock, and atomic counters all exist for that). This script builds
# the suites that exercise both under -DGLOCKS_SANITIZE=thread and runs
# them twice — once serial-machine (the historical gate) and once with
# GLOCKS_SHARDS=4 so every determinism/soak workload drives the sharded
# engine under the race detector:
#
#   exec_pool_test          pool/queue/emitter semantics
#   determinism_test        parallel sweeps byte-identical to serial, and
#                           the sweep-resume manifest from pool threads
#   soak_test               whole machines running concurrently on pool
#                           threads (checkpoint churn + shard re-shard
#                           churn)
#   ckpt_test               archive/manifest units
#   ckpt_equivalence_test   checkpoint/restore round trips
#   shard_equivalence_test  every workload x {1,2,4,8} shards bit-equal,
#                           cross-shard checkpoint restores (plain,
#                           G-line-faulted, and mesh-faulted machines)
#   mesh_fault_test         mesh link faults: ARQ under loss, dead-link
#                           detours, e2e watchdog escalation — honors
#                           GLOCKS_SHARDS, so the second pass drives the
#                           mesh fault domain on sharded machines
#
# Usage: scripts/check_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DGLOCKS_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" \
      --target exec_pool_test determinism_test soak_test \
               ckpt_test ckpt_equivalence_test shard_equivalence_test \
               mesh_fault_test
# --timeout: the shard-equivalence suite runs every workload at several
# shard counts; under TSan on a slow host that legitimately exceeds
# ctest's default 1500 s budget.
ctest --test-dir "$BUILD_DIR" --output-on-failure --timeout 7200 \
      -R '^(exec_pool_test|determinism_test|soak_test|ckpt_test|ckpt_equivalence_test|shard_equivalence_test|mesh_fault_test)$'
# Second pass: the same machines sharded 4 ways in per-cycle lockstep
# (GLOCKS_SHARD_WINDOW=1). The suites' assertions are shard-agnostic
# (results are bit-identical by contract), so any new failure here is
# either a data race TSan caught or a broken contract. mesh_fault_test
# rides along so the mesh fault domain's coordinator-side judging runs
# against sharded workers under the race detector.
GLOCKS_SHARDS=4 GLOCKS_SHARD_WINDOW=1 \
    ctest --test-dir "$BUILD_DIR" --output-on-failure --timeout 7200 \
      -R '^(determinism_test|soak_test|mesh_fault_test)$'
# Third pass: multi-cycle lookahead windows (GLOCKS_SHARD_WINDOW=0 =
# auto). This drives the windowed kernel — per-shard local clocks, the
# region-sharded mesh, boundary-flit staging taps, and the window-edge
# merges — under the race detector; mesh_fault_test rides along to prove
# the window gate's lockstep fallback on fault-armed fabrics.
GLOCKS_SHARDS=4 GLOCKS_SHARD_WINDOW=0 \
    ctest --test-dir "$BUILD_DIR" --output-on-failure --timeout 7200 \
      -R '^(determinism_test|soak_test|mesh_fault_test)$'
# Fourth pass: a non-contiguous tile->shard ownership map
# (GLOCKS_SHARD_MAP=stripe interleaves adjacent tiles across shards), so
# every mesh boundary tap, staging buffer, and express decline runs with
# maximal cross-shard adjacency under the race detector — the worst case
# for region-boundary races that contiguous bands never exercise.
GLOCKS_SHARDS=4 GLOCKS_SHARD_MAP=stripe \
    ctest --test-dir "$BUILD_DIR" --output-on-failure --timeout 7200 \
      -R '^(determinism_test|soak_test|mesh_fault_test)$'
echo "TSan check passed."
