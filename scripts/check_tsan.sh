#!/usr/bin/env bash
# ThreadSanitizer gate for the run-level parallelism subsystem.
#
# The simulator itself is single-threaded per run (one Engine, fixed tick
# order); threads only exist in src/exec, which fans independent runs out
# across workers. This script builds the suites that exercise those
# threads under -DGLOCKS_SANITIZE=thread and runs them:
#
#   exec_pool_test    pool/queue/emitter semantics
#   determinism_test  parallel sweeps byte-identical to serial, and the
#                     sweep-resume manifest recording from pool threads
#   soak_test         whole machines running concurrently on pool threads
#                     (including the checkpoint-churn soak)
#   ckpt_test         archive/manifest units
#   ckpt_equivalence_test  checkpoint/restore round trips
#
# Usage: scripts/check_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DGLOCKS_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" \
      --target exec_pool_test determinism_test soak_test \
               ckpt_test ckpt_equivalence_test
ctest --test-dir "$BUILD_DIR" --output-on-failure \
      -R '^(exec_pool_test|determinism_test|soak_test|ckpt_test|ckpt_equivalence_test)$'
echo "TSan check passed."
