#!/usr/bin/env bash
# Simulator-throughput smoke: runs bench/sim_throughput at reduced scale
# and compares the event-kernel speedup and skip fraction against the
# committed full-scale baseline (BENCH_sim_throughput.json).
#
# The gate is deliberately generous — CI machines vary wildly in clock
# speed and load, so absolute Mcycles/s is not checked at all. What must
# hold on any machine:
#
#   1. the event kernel and the serial reference produced identical
#      results ("identical": true — a correctness bug, not a perf one),
#   2. the measured speedup is at least MIN_SPEEDUP (default: 60% of the
#      baseline's speedup, floored at 1.5x) — catches a regression that
#      quietly turns the event kernel back into tick-everything,
#   3. the express-route hit rate is at least MIN_XHIT (default: half
#      the committed baseline's) — catches a conflict-check change that
#      silently declines everything and falls back to hop-by-hop,
#   4. when the host has >= 4 hardware threads: the 4-shard windowed run
#      of the big machine is at least MIN_SHARD_SPEEDUP (default 2.0x,
#      an absolute floor — hosted runners are too variable for a
#      baseline-relative one) faster than the serial scan, and sharded
#      results stayed bit-identical ("shard_identical": true). The 2.0x
#      floor is the point of the multi-cycle lookahead kernel: lockstep
#      sharding ran BELOW 1x (barrier overhead beat the parallelism), so
#      missing the floor on a capable host means windows stopped
#      engaging — check the window histogram in the --perf shard-exec
#      block. On smaller hosts the speedup check is skipped with the
#      reason logged (the workers would just time-slice one core) but
#      identity is still enforced.
#   5. every shard ownership map (block/stripe/quad/profile) stayed
#      bit-identical to the serial scan ("map_identical": true), and —
#      on hosts with real parallelism, i.e. unless the bench flagged
#      "shard_numbers_advisory" — the profile map's per-shard busy-ns
#      imbalance ratio is no worse than the block map's (the load
#      balancer must not lose to the default it replaces).
#
# Usage: scripts/bench_throughput.sh [build-dir] [scale]
#        MIN_SPEEDUP=1.5 MIN_XHIT=0.3 MIN_SHARD_SPEEDUP=2.0 \
#            scripts/bench_throughput.sh build 0.25
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
SCALE="${2:-0.25}"
BASELINE="BENCH_sim_throughput.json"
OUT="$BUILD_DIR/BENCH_sim_throughput.smoke.json"

if [[ ! -x "$BUILD_DIR/bench/sim_throughput" ]]; then
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target sim_throughput
fi

# The smoke shrinks the shard section too: 64 simulated cores is still
# plenty of tiles per worker, and keeps the smoke fast on one runner.
"$BUILD_DIR/bench/sim_throughput" --scale "$SCALE" --out "$OUT" \
    --shard-cores 64 --shard-scale "$SCALE"

json_field() {  # json_field FILE KEY -> scalar value
  sed -n "s/^ *\"$2\": \([^,]*\),*$/\1/p" "$1" | head -1
}

identical="$(json_field "$OUT" identical)"
speedup="$(json_field "$OUT" speedup)"
xhit="$(json_field "$OUT" express_hit_rate)"
base_speedup="$(json_field "$BASELINE" speedup)"
base_xhit="$(json_field "$BASELINE" express_hit_rate)"

# Floor: 60% of the committed baseline's speedup, never below 1.5.
min="${MIN_SPEEDUP:-$(awk -v b="$base_speedup" \
      'BEGIN { m = b * 0.6; if (m < 1.5) m = 1.5; printf "%.2f", m }')}"
# Express floor: half the committed baseline's hit rate.
min_xhit="${MIN_XHIT:-$(awk -v b="$base_xhit" \
      'BEGIN { printf "%.3f", b / 2 }')}"

echo
echo "perf-smoke: identical=$identical speedup=${speedup}x" \
     "(baseline ${base_speedup}x, floor ${min}x)" \
     "express_hit_rate=$xhit (baseline ${base_xhit}, floor ${min_xhit})"

if [[ "$identical" != "true" ]]; then
  echo "FAIL: event kernel diverged from the serial reference" >&2
  exit 1
fi
if ! awk -v s="$speedup" -v m="$min" 'BEGIN { exit !(s >= m) }'; then
  echo "FAIL: speedup ${speedup}x below the ${min}x floor" >&2
  exit 1
fi
if ! awk -v x="$xhit" -v m="$min_xhit" 'BEGIN { exit !(x >= m) }'; then
  echo "FAIL: express hit rate ${xhit} below the ${min_xhit} floor" >&2
  exit 1
fi

shard_identical="$(json_field "$OUT" shard_identical)"
shard_speedup="$(json_field "$OUT" shard_speedup_4)"
host_threads="$(json_field "$OUT" host_threads)"
min_shard="${MIN_SHARD_SPEEDUP:-2.0}"
if [[ "$shard_identical" != "true" ]]; then
  echo "FAIL: sharded runs diverged from the serial scan" >&2
  exit 1
fi
map_identical="$(json_field "$OUT" map_identical)"
advisory="$(json_field "$OUT" shard_numbers_advisory)"
imb_block="$(json_field "$OUT" imbalance_block)"
imb_profile="$(json_field "$OUT" imbalance_profile)"
if [[ "$map_identical" != "true" ]]; then
  echo "FAIL: a shard ownership map diverged from the serial scan" >&2
  exit 1
fi
if [[ "$host_threads" -ge 4 ]]; then
  echo "shard-smoke: shard_speedup_4=${shard_speedup}x" \
       "(floor ${min_shard}x, host threads ${host_threads})"
  if ! awk -v s="$shard_speedup" -v m="$min_shard" \
        'BEGIN { exit !(s >= m) }'; then
    echo "FAIL: 4-shard windowed speedup ${shard_speedup}x below the" \
         "${min_shard}x floor on a ${host_threads}-thread host." >&2
    echo "      The lookahead windows are not paying for the barriers:" \
         "run the bench with --perf and check the shard-exec window" \
         "histogram — windows collapsing to 1 cycle mean a planner" \
         "clamp (sequential slots, core actions, or mem-waiters) is" \
         "pinning every epoch to lockstep." >&2
    exit 1
  fi
  echo "map-smoke: imbalance block=${imb_block}x profile=${imb_profile}x" \
       "(advisory=${advisory})"
  if [[ "$advisory" == "true" ]]; then
    echo "map-smoke: CAVEAT — the bench reported shard_numbers_advisory:" \
         "the host's ${host_threads} hardware threads are fewer than 2x" \
         "the shard workers, so busy-ns imbalance reflects time-slicing" \
         "as much as the ownership map. The profile<=block gate is not" \
         "applied; bit-identity under every map is still enforced."
  elif ! awk -v p="$imb_profile" -v b="$imb_block" \
        'BEGIN { exit !(p <= b) }'; then
    echo "FAIL: profile map busy-ns imbalance ${imb_profile}x exceeds" \
         "block's ${imb_block}x — the profile balancer is making the" \
         "shard load split worse than the contiguous default. Check the" \
         "hot-tile list and the per-shard busy/wait times in the --perf" \
         "shard-exec block." >&2
    exit 1
  fi
else
  echo "shard-smoke: CAVEAT — host has only ${host_threads} hardware" \
       "thread(s), so 4 shard workers time-slice one core and the" \
       "speedup/imbalance numbers are advisory noise (the bench flags" \
       "this as shard_numbers_advisory=${advisory}). The" \
       "shard_speedup_4 >= ${min_shard}x and profile<=block imbalance" \
       "gates are not applied; bit-identity of sharded results under" \
       "every ownership map is still enforced."
fi
echo "perf-smoke passed."
