#!/usr/bin/env bash
# Simulator-throughput smoke: runs bench/sim_throughput at reduced scale
# and compares the event-kernel speedup and skip fraction against the
# committed full-scale baseline (BENCH_sim_throughput.json).
#
# The gate is deliberately generous — CI machines vary wildly in clock
# speed and load, so absolute Mcycles/s is not checked at all. What must
# hold on any machine:
#
#   1. the event kernel and the serial reference produced identical
#      results ("identical": true — a correctness bug, not a perf one),
#   2. the measured speedup is at least MIN_SPEEDUP (default: half the
#      baseline's speedup, floored at 1.2x) — catches a regression that
#      quietly turns the event kernel back into tick-everything.
#
# Usage: scripts/bench_throughput.sh [build-dir] [scale]
#        MIN_SPEEDUP=1.5 scripts/bench_throughput.sh build 0.25
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
SCALE="${2:-0.25}"
BASELINE="BENCH_sim_throughput.json"
OUT="$BUILD_DIR/BENCH_sim_throughput.smoke.json"

if [[ ! -x "$BUILD_DIR/bench/sim_throughput" ]]; then
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target sim_throughput
fi

"$BUILD_DIR/bench/sim_throughput" --scale "$SCALE" --out "$OUT"

json_field() {  # json_field FILE KEY -> scalar value
  sed -n "s/^ *\"$2\": \([^,]*\),*$/\1/p" "$1" | head -1
}

identical="$(json_field "$OUT" identical)"
speedup="$(json_field "$OUT" speedup)"
base_speedup="$(json_field "$BASELINE" speedup)"

# Generous floor: half the committed baseline's speedup, never below 1.2.
min="${MIN_SPEEDUP:-$(awk -v b="$base_speedup" \
      'BEGIN { m = b / 2; if (m < 1.2) m = 1.2; printf "%.2f", m }')}"

echo
echo "perf-smoke: identical=$identical speedup=${speedup}x" \
     "(baseline ${base_speedup}x, floor ${min}x)"

if [[ "$identical" != "true" ]]; then
  echo "FAIL: event kernel diverged from the serial reference" >&2
  exit 1
fi
if ! awk -v s="$speedup" -v m="$min" 'BEGIN { exit !(s >= m) }'; then
  echo "FAIL: speedup ${speedup}x below the ${min}x floor" >&2
  exit 1
fi
echo "perf-smoke passed."
