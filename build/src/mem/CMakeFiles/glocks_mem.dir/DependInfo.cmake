
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/directory.cpp" "src/mem/CMakeFiles/glocks_mem.dir/directory.cpp.o" "gcc" "src/mem/CMakeFiles/glocks_mem.dir/directory.cpp.o.d"
  "/root/repo/src/mem/hierarchy.cpp" "src/mem/CMakeFiles/glocks_mem.dir/hierarchy.cpp.o" "gcc" "src/mem/CMakeFiles/glocks_mem.dir/hierarchy.cpp.o.d"
  "/root/repo/src/mem/l1_cache.cpp" "src/mem/CMakeFiles/glocks_mem.dir/l1_cache.cpp.o" "gcc" "src/mem/CMakeFiles/glocks_mem.dir/l1_cache.cpp.o.d"
  "/root/repo/src/mem/qolb.cpp" "src/mem/CMakeFiles/glocks_mem.dir/qolb.cpp.o" "gcc" "src/mem/CMakeFiles/glocks_mem.dir/qolb.cpp.o.d"
  "/root/repo/src/mem/sync_buffer.cpp" "src/mem/CMakeFiles/glocks_mem.dir/sync_buffer.cpp.o" "gcc" "src/mem/CMakeFiles/glocks_mem.dir/sync_buffer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/glocks_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/glocks_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/glocks_noc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
