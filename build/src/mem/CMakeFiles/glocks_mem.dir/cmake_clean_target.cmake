file(REMOVE_RECURSE
  "libglocks_mem.a"
)
