# Empty compiler generated dependencies file for glocks_mem.
# This may be replaced when dependencies are built.
