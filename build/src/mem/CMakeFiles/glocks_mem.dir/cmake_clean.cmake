file(REMOVE_RECURSE
  "CMakeFiles/glocks_mem.dir/directory.cpp.o"
  "CMakeFiles/glocks_mem.dir/directory.cpp.o.d"
  "CMakeFiles/glocks_mem.dir/hierarchy.cpp.o"
  "CMakeFiles/glocks_mem.dir/hierarchy.cpp.o.d"
  "CMakeFiles/glocks_mem.dir/l1_cache.cpp.o"
  "CMakeFiles/glocks_mem.dir/l1_cache.cpp.o.d"
  "CMakeFiles/glocks_mem.dir/qolb.cpp.o"
  "CMakeFiles/glocks_mem.dir/qolb.cpp.o.d"
  "CMakeFiles/glocks_mem.dir/sync_buffer.cpp.o"
  "CMakeFiles/glocks_mem.dir/sync_buffer.cpp.o.d"
  "libglocks_mem.a"
  "libglocks_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glocks_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
