file(REMOVE_RECURSE
  "libglocks_trace.a"
)
