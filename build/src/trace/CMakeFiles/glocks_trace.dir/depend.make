# Empty dependencies file for glocks_trace.
# This may be replaced when dependencies are built.
