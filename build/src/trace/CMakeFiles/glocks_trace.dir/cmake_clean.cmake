file(REMOVE_RECURSE
  "CMakeFiles/glocks_trace.dir/tracer.cpp.o"
  "CMakeFiles/glocks_trace.dir/tracer.cpp.o.d"
  "libglocks_trace.a"
  "libglocks_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glocks_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
