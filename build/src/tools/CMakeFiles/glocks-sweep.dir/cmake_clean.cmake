file(REMOVE_RECURSE
  "CMakeFiles/glocks-sweep.dir/glocks_sweep.cpp.o"
  "CMakeFiles/glocks-sweep.dir/glocks_sweep.cpp.o.d"
  "glocks-sweep"
  "glocks-sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glocks-sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
