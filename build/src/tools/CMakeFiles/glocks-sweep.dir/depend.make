# Empty dependencies file for glocks-sweep.
# This may be replaced when dependencies are built.
