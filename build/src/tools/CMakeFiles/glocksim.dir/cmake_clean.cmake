file(REMOVE_RECURSE
  "CMakeFiles/glocksim.dir/glocksim.cpp.o"
  "CMakeFiles/glocksim.dir/glocksim.cpp.o.d"
  "glocksim"
  "glocksim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glocksim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
