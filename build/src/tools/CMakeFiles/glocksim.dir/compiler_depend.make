# Empty compiler generated dependencies file for glocksim.
# This may be replaced when dependencies are built.
