file(REMOVE_RECURSE
  "CMakeFiles/glocks_noc.dir/mesh.cpp.o"
  "CMakeFiles/glocks_noc.dir/mesh.cpp.o.d"
  "CMakeFiles/glocks_noc.dir/router.cpp.o"
  "CMakeFiles/glocks_noc.dir/router.cpp.o.d"
  "libglocks_noc.a"
  "libglocks_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glocks_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
