file(REMOVE_RECURSE
  "libglocks_noc.a"
)
