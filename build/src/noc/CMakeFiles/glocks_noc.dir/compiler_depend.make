# Empty compiler generated dependencies file for glocks_noc.
# This may be replaced when dependencies are built.
