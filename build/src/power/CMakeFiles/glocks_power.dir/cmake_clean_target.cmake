file(REMOVE_RECURSE
  "libglocks_power.a"
)
