file(REMOVE_RECURSE
  "CMakeFiles/glocks_power.dir/energy_model.cpp.o"
  "CMakeFiles/glocks_power.dir/energy_model.cpp.o.d"
  "libglocks_power.a"
  "libglocks_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glocks_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
