# Empty dependencies file for glocks_power.
# This may be replaced when dependencies are built.
