file(REMOVE_RECURSE
  "libglocks_sim.a"
)
