# Empty compiler generated dependencies file for glocks_sim.
# This may be replaced when dependencies are built.
