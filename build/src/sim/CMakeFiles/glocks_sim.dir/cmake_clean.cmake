file(REMOVE_RECURSE
  "CMakeFiles/glocks_sim.dir/engine.cpp.o"
  "CMakeFiles/glocks_sim.dir/engine.cpp.o.d"
  "libglocks_sim.a"
  "libglocks_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glocks_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
