file(REMOVE_RECURSE
  "CMakeFiles/glocks_workloads.dir/apps.cpp.o"
  "CMakeFiles/glocks_workloads.dir/apps.cpp.o.d"
  "CMakeFiles/glocks_workloads.dir/micro.cpp.o"
  "CMakeFiles/glocks_workloads.dir/micro.cpp.o.d"
  "CMakeFiles/glocks_workloads.dir/registry.cpp.o"
  "CMakeFiles/glocks_workloads.dir/registry.cpp.o.d"
  "CMakeFiles/glocks_workloads.dir/trace_replay.cpp.o"
  "CMakeFiles/glocks_workloads.dir/trace_replay.cpp.o.d"
  "libglocks_workloads.a"
  "libglocks_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glocks_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
