# Empty dependencies file for glocks_workloads.
# This may be replaced when dependencies are built.
