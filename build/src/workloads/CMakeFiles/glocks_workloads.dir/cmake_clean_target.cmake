file(REMOVE_RECURSE
  "libglocks_workloads.a"
)
