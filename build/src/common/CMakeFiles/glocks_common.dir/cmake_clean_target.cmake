file(REMOVE_RECURSE
  "libglocks_common.a"
)
