# Empty compiler generated dependencies file for glocks_common.
# This may be replaced when dependencies are built.
