file(REMOVE_RECURSE
  "CMakeFiles/glocks_common.dir/check.cpp.o"
  "CMakeFiles/glocks_common.dir/check.cpp.o.d"
  "CMakeFiles/glocks_common.dir/config.cpp.o"
  "CMakeFiles/glocks_common.dir/config.cpp.o.d"
  "CMakeFiles/glocks_common.dir/stats.cpp.o"
  "CMakeFiles/glocks_common.dir/stats.cpp.o.d"
  "libglocks_common.a"
  "libglocks_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glocks_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
