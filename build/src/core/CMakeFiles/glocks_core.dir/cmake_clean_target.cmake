file(REMOVE_RECURSE
  "libglocks_core.a"
)
