file(REMOVE_RECURSE
  "CMakeFiles/glocks_core.dir/core.cpp.o"
  "CMakeFiles/glocks_core.dir/core.cpp.o.d"
  "libglocks_core.a"
  "libglocks_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glocks_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
