
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/core.cpp" "src/core/CMakeFiles/glocks_core.dir/core.cpp.o" "gcc" "src/core/CMakeFiles/glocks_core.dir/core.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/glocks_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/glocks_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/glocks_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/glocks_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/glocks_noc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
