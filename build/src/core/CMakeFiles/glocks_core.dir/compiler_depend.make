# Empty compiler generated dependencies file for glocks_core.
# This may be replaced when dependencies are built.
