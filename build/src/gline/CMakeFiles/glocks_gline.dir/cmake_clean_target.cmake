file(REMOVE_RECURSE
  "libglocks_gline.a"
)
