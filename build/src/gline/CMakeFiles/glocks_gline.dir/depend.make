# Empty dependencies file for glocks_gline.
# This may be replaced when dependencies are built.
