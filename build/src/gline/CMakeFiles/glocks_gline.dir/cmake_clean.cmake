file(REMOVE_RECURSE
  "CMakeFiles/glocks_gline.dir/gbarrier_unit.cpp.o"
  "CMakeFiles/glocks_gline.dir/gbarrier_unit.cpp.o.d"
  "CMakeFiles/glocks_gline.dir/gline_system.cpp.o"
  "CMakeFiles/glocks_gline.dir/gline_system.cpp.o.d"
  "CMakeFiles/glocks_gline.dir/glock_unit.cpp.o"
  "CMakeFiles/glocks_gline.dir/glock_unit.cpp.o.d"
  "CMakeFiles/glocks_gline.dir/hier_glock_unit.cpp.o"
  "CMakeFiles/glocks_gline.dir/hier_glock_unit.cpp.o.d"
  "libglocks_gline.a"
  "libglocks_gline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glocks_gline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
