file(REMOVE_RECURSE
  "CMakeFiles/glocks_harness.dir/auto_policy.cpp.o"
  "CMakeFiles/glocks_harness.dir/auto_policy.cpp.o.d"
  "CMakeFiles/glocks_harness.dir/cmp_system.cpp.o"
  "CMakeFiles/glocks_harness.dir/cmp_system.cpp.o.d"
  "CMakeFiles/glocks_harness.dir/multiprog.cpp.o"
  "CMakeFiles/glocks_harness.dir/multiprog.cpp.o.d"
  "CMakeFiles/glocks_harness.dir/report.cpp.o"
  "CMakeFiles/glocks_harness.dir/report.cpp.o.d"
  "CMakeFiles/glocks_harness.dir/runner.cpp.o"
  "CMakeFiles/glocks_harness.dir/runner.cpp.o.d"
  "CMakeFiles/glocks_harness.dir/workload.cpp.o"
  "CMakeFiles/glocks_harness.dir/workload.cpp.o.d"
  "libglocks_harness.a"
  "libglocks_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glocks_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
