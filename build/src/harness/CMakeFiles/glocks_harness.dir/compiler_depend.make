# Empty compiler generated dependencies file for glocks_harness.
# This may be replaced when dependencies are built.
