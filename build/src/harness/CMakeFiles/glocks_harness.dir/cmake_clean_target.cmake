file(REMOVE_RECURSE
  "libglocks_harness.a"
)
