file(REMOVE_RECURSE
  "libglocks_locks.a"
)
