# Empty dependencies file for glocks_locks.
# This may be replaced when dependencies are built.
