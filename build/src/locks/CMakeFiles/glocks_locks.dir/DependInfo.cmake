
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/locks/clh_lock.cpp" "src/locks/CMakeFiles/glocks_locks.dir/clh_lock.cpp.o" "gcc" "src/locks/CMakeFiles/glocks_locks.dir/clh_lock.cpp.o.d"
  "/root/repo/src/locks/factory.cpp" "src/locks/CMakeFiles/glocks_locks.dir/factory.cpp.o" "gcc" "src/locks/CMakeFiles/glocks_locks.dir/factory.cpp.o.d"
  "/root/repo/src/locks/lock.cpp" "src/locks/CMakeFiles/glocks_locks.dir/lock.cpp.o" "gcc" "src/locks/CMakeFiles/glocks_locks.dir/lock.cpp.o.d"
  "/root/repo/src/locks/queue_locks.cpp" "src/locks/CMakeFiles/glocks_locks.dir/queue_locks.cpp.o" "gcc" "src/locks/CMakeFiles/glocks_locks.dir/queue_locks.cpp.o.d"
  "/root/repo/src/locks/reactive_lock.cpp" "src/locks/CMakeFiles/glocks_locks.dir/reactive_lock.cpp.o" "gcc" "src/locks/CMakeFiles/glocks_locks.dir/reactive_lock.cpp.o.d"
  "/root/repo/src/locks/special_locks.cpp" "src/locks/CMakeFiles/glocks_locks.dir/special_locks.cpp.o" "gcc" "src/locks/CMakeFiles/glocks_locks.dir/special_locks.cpp.o.d"
  "/root/repo/src/locks/spin_locks.cpp" "src/locks/CMakeFiles/glocks_locks.dir/spin_locks.cpp.o" "gcc" "src/locks/CMakeFiles/glocks_locks.dir/spin_locks.cpp.o.d"
  "/root/repo/src/locks/virtual_glock.cpp" "src/locks/CMakeFiles/glocks_locks.dir/virtual_glock.cpp.o" "gcc" "src/locks/CMakeFiles/glocks_locks.dir/virtual_glock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/glocks_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/glocks_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/glocks_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/glocks_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/glocks_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/glocks_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
