file(REMOVE_RECURSE
  "CMakeFiles/glocks_locks.dir/clh_lock.cpp.o"
  "CMakeFiles/glocks_locks.dir/clh_lock.cpp.o.d"
  "CMakeFiles/glocks_locks.dir/factory.cpp.o"
  "CMakeFiles/glocks_locks.dir/factory.cpp.o.d"
  "CMakeFiles/glocks_locks.dir/lock.cpp.o"
  "CMakeFiles/glocks_locks.dir/lock.cpp.o.d"
  "CMakeFiles/glocks_locks.dir/queue_locks.cpp.o"
  "CMakeFiles/glocks_locks.dir/queue_locks.cpp.o.d"
  "CMakeFiles/glocks_locks.dir/reactive_lock.cpp.o"
  "CMakeFiles/glocks_locks.dir/reactive_lock.cpp.o.d"
  "CMakeFiles/glocks_locks.dir/special_locks.cpp.o"
  "CMakeFiles/glocks_locks.dir/special_locks.cpp.o.d"
  "CMakeFiles/glocks_locks.dir/spin_locks.cpp.o"
  "CMakeFiles/glocks_locks.dir/spin_locks.cpp.o.d"
  "CMakeFiles/glocks_locks.dir/virtual_glock.cpp.o"
  "CMakeFiles/glocks_locks.dir/virtual_glock.cpp.o.d"
  "libglocks_locks.a"
  "libglocks_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glocks_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
