file(REMOVE_RECURSE
  "CMakeFiles/glocks_sync.dir/barrier.cpp.o"
  "CMakeFiles/glocks_sync.dir/barrier.cpp.o.d"
  "libglocks_sync.a"
  "libglocks_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glocks_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
