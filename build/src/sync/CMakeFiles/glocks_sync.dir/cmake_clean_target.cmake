file(REMOVE_RECURSE
  "libglocks_sync.a"
)
