# Empty dependencies file for glocks_sync.
# This may be replaced when dependencies are built.
