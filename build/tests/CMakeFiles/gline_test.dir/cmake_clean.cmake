file(REMOVE_RECURSE
  "CMakeFiles/gline_test.dir/gline_test.cpp.o"
  "CMakeFiles/gline_test.dir/gline_test.cpp.o.d"
  "gline_test"
  "gline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
