file(REMOVE_RECURSE
  "CMakeFiles/gbarrier_test.dir/gbarrier_test.cpp.o"
  "CMakeFiles/gbarrier_test.dir/gbarrier_test.cpp.o.d"
  "gbarrier_test"
  "gbarrier_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbarrier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
