# Empty dependencies file for gbarrier_test.
# This may be replaced when dependencies are built.
