file(REMOVE_RECURSE
  "CMakeFiles/mem_directory_edge_test.dir/mem_directory_edge_test.cpp.o"
  "CMakeFiles/mem_directory_edge_test.dir/mem_directory_edge_test.cpp.o.d"
  "mem_directory_edge_test"
  "mem_directory_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_directory_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
