# Empty compiler generated dependencies file for mem_directory_edge_test.
# This may be replaced when dependencies are built.
