file(REMOVE_RECURSE
  "CMakeFiles/mem_protocol_test.dir/mem_protocol_test.cpp.o"
  "CMakeFiles/mem_protocol_test.dir/mem_protocol_test.cpp.o.d"
  "mem_protocol_test"
  "mem_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
