# Empty dependencies file for mem_protocol_test.
# This may be replaced when dependencies are built.
