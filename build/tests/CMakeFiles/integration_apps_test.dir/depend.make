# Empty dependencies file for integration_apps_test.
# This may be replaced when dependencies are built.
