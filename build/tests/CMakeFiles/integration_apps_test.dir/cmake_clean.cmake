file(REMOVE_RECURSE
  "CMakeFiles/integration_apps_test.dir/integration_apps_test.cpp.o"
  "CMakeFiles/integration_apps_test.dir/integration_apps_test.cpp.o.d"
  "integration_apps_test"
  "integration_apps_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_apps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
