file(REMOVE_RECURSE
  "CMakeFiles/sync_buffer_test.dir/sync_buffer_test.cpp.o"
  "CMakeFiles/sync_buffer_test.dir/sync_buffer_test.cpp.o.d"
  "sync_buffer_test"
  "sync_buffer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
