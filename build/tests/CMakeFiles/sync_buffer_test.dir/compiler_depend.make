# Empty compiler generated dependencies file for sync_buffer_test.
# This may be replaced when dependencies are built.
