# Empty dependencies file for qolb_test.
# This may be replaced when dependencies are built.
