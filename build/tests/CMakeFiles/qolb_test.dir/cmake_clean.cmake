file(REMOVE_RECURSE
  "CMakeFiles/qolb_test.dir/qolb_test.cpp.o"
  "CMakeFiles/qolb_test.dir/qolb_test.cpp.o.d"
  "qolb_test"
  "qolb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qolb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
