file(REMOVE_RECURSE
  "CMakeFiles/mem_property_test.dir/mem_property_test.cpp.o"
  "CMakeFiles/mem_property_test.dir/mem_property_test.cpp.o.d"
  "mem_property_test"
  "mem_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
