file(REMOVE_RECURSE
  "CMakeFiles/auto_policy_test.dir/auto_policy_test.cpp.o"
  "CMakeFiles/auto_policy_test.dir/auto_policy_test.cpp.o.d"
  "auto_policy_test"
  "auto_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
