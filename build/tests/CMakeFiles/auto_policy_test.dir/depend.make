# Empty dependencies file for auto_policy_test.
# This may be replaced when dependencies are built.
