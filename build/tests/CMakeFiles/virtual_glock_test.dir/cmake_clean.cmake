file(REMOVE_RECURSE
  "CMakeFiles/virtual_glock_test.dir/virtual_glock_test.cpp.o"
  "CMakeFiles/virtual_glock_test.dir/virtual_glock_test.cpp.o.d"
  "virtual_glock_test"
  "virtual_glock_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_glock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
