# Empty compiler generated dependencies file for virtual_glock_test.
# This may be replaced when dependencies are built.
