
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/virtual_glock_test.cpp" "tests/CMakeFiles/virtual_glock_test.dir/virtual_glock_test.cpp.o" "gcc" "tests/CMakeFiles/virtual_glock_test.dir/virtual_glock_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/glocks_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/glocks_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/glocks_power.dir/DependInfo.cmake"
  "/root/repo/build/src/gline/CMakeFiles/glocks_gline.dir/DependInfo.cmake"
  "/root/repo/build/src/locks/CMakeFiles/glocks_locks.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/glocks_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/glocks_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/glocks_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/glocks_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/glocks_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/glocks_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/glocks_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
