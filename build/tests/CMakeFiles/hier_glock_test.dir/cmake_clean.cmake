file(REMOVE_RECURSE
  "CMakeFiles/hier_glock_test.dir/hier_glock_test.cpp.o"
  "CMakeFiles/hier_glock_test.dir/hier_glock_test.cpp.o.d"
  "hier_glock_test"
  "hier_glock_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hier_glock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
