# Empty compiler generated dependencies file for hier_glock_test.
# This may be replaced when dependencies are built.
