file(REMOVE_RECURSE
  "CMakeFiles/multiprog_test.dir/multiprog_test.cpp.o"
  "CMakeFiles/multiprog_test.dir/multiprog_test.cpp.o.d"
  "multiprog_test"
  "multiprog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiprog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
