file(REMOVE_RECURSE
  "CMakeFiles/mem_vc_races_test.dir/mem_vc_races_test.cpp.o"
  "CMakeFiles/mem_vc_races_test.dir/mem_vc_races_test.cpp.o.d"
  "mem_vc_races_test"
  "mem_vc_races_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_vc_races_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
