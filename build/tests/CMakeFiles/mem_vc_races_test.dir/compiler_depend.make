# Empty compiler generated dependencies file for mem_vc_races_test.
# This may be replaced when dependencies are built.
