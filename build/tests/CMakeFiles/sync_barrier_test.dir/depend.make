# Empty dependencies file for sync_barrier_test.
# This may be replaced when dependencies are built.
