file(REMOVE_RECURSE
  "CMakeFiles/sync_barrier_test.dir/sync_barrier_test.cpp.o"
  "CMakeFiles/sync_barrier_test.dir/sync_barrier_test.cpp.o.d"
  "sync_barrier_test"
  "sync_barrier_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_barrier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
