file(REMOVE_RECURSE
  "CMakeFiles/multi_lock_property_test.dir/multi_lock_property_test.cpp.o"
  "CMakeFiles/multi_lock_property_test.dir/multi_lock_property_test.cpp.o.d"
  "multi_lock_property_test"
  "multi_lock_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_lock_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
