file(REMOVE_RECURSE
  "CMakeFiles/noc_vc_test.dir/noc_vc_test.cpp.o"
  "CMakeFiles/noc_vc_test.dir/noc_vc_test.cpp.o.d"
  "noc_vc_test"
  "noc_vc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_vc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
