# Empty dependencies file for noc_vc_test.
# This may be replaced when dependencies are built.
