file(REMOVE_RECURSE
  "CMakeFiles/paper_fig4_conformance_test.dir/paper_fig4_conformance_test.cpp.o"
  "CMakeFiles/paper_fig4_conformance_test.dir/paper_fig4_conformance_test.cpp.o.d"
  "paper_fig4_conformance_test"
  "paper_fig4_conformance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_fig4_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
