# Empty dependencies file for paper_fig4_conformance_test.
# This may be replaced when dependencies are built.
