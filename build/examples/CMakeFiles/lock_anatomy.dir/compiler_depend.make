# Empty compiler generated dependencies file for lock_anatomy.
# This may be replaced when dependencies are built.
