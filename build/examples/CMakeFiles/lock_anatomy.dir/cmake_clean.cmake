file(REMOVE_RECURSE
  "CMakeFiles/lock_anatomy.dir/lock_anatomy.cpp.o"
  "CMakeFiles/lock_anatomy.dir/lock_anatomy.cpp.o.d"
  "lock_anatomy"
  "lock_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
