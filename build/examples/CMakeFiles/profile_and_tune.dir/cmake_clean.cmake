file(REMOVE_RECURSE
  "CMakeFiles/profile_and_tune.dir/profile_and_tune.cpp.o"
  "CMakeFiles/profile_and_tune.dir/profile_and_tune.cpp.o.d"
  "profile_and_tune"
  "profile_and_tune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_and_tune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
