# Empty dependencies file for profile_and_tune.
# This may be replaced when dependencies are built.
