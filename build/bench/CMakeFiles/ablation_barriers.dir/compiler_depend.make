# Empty compiler generated dependencies file for ablation_barriers.
# This may be replaced when dependencies are built.
