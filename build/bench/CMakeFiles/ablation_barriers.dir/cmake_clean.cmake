file(REMOVE_RECURSE
  "CMakeFiles/ablation_barriers.dir/ablation_barriers.cpp.o"
  "CMakeFiles/ablation_barriers.dir/ablation_barriers.cpp.o.d"
  "ablation_barriers"
  "ablation_barriers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_barriers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
