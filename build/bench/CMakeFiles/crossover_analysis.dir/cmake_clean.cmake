file(REMOVE_RECURSE
  "CMakeFiles/crossover_analysis.dir/crossover_analysis.cpp.o"
  "CMakeFiles/crossover_analysis.dir/crossover_analysis.cpp.o.d"
  "crossover_analysis"
  "crossover_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossover_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
