# Empty dependencies file for crossover_analysis.
# This may be replaced when dependencies are built.
