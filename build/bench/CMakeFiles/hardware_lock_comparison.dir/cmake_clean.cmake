file(REMOVE_RECURSE
  "CMakeFiles/hardware_lock_comparison.dir/hardware_lock_comparison.cpp.o"
  "CMakeFiles/hardware_lock_comparison.dir/hardware_lock_comparison.cpp.o.d"
  "hardware_lock_comparison"
  "hardware_lock_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardware_lock_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
