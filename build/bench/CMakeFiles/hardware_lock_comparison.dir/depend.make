# Empty dependencies file for hardware_lock_comparison.
# This may be replaced when dependencies are built.
