file(REMOVE_RECURSE
  "CMakeFiles/fig10_ed2p.dir/fig10_ed2p.cpp.o"
  "CMakeFiles/fig10_ed2p.dir/fig10_ed2p.cpp.o.d"
  "fig10_ed2p"
  "fig10_ed2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_ed2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
