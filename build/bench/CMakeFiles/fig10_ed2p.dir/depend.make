# Empty dependencies file for fig10_ed2p.
# This may be replaced when dependencies are built.
