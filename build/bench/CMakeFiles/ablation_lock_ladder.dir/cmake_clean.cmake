file(REMOVE_RECURSE
  "CMakeFiles/ablation_lock_ladder.dir/ablation_lock_ladder.cpp.o"
  "CMakeFiles/ablation_lock_ladder.dir/ablation_lock_ladder.cpp.o.d"
  "ablation_lock_ladder"
  "ablation_lock_ladder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lock_ladder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
