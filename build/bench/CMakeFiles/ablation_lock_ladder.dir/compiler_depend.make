# Empty compiler generated dependencies file for ablation_lock_ladder.
# This may be replaced when dependencies are built.
