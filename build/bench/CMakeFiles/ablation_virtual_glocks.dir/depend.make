# Empty dependencies file for ablation_virtual_glocks.
# This may be replaced when dependencies are built.
