file(REMOVE_RECURSE
  "CMakeFiles/ablation_virtual_glocks.dir/ablation_virtual_glocks.cpp.o"
  "CMakeFiles/ablation_virtual_glocks.dir/ablation_virtual_glocks.cpp.o.d"
  "ablation_virtual_glocks"
  "ablation_virtual_glocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_virtual_glocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
