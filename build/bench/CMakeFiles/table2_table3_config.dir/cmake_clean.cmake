file(REMOVE_RECURSE
  "CMakeFiles/table2_table3_config.dir/table2_table3_config.cpp.o"
  "CMakeFiles/table2_table3_config.dir/table2_table3_config.cpp.o.d"
  "table2_table3_config"
  "table2_table3_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_table3_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
