# Empty dependencies file for table2_table3_config.
# This may be replaced when dependencies are built.
