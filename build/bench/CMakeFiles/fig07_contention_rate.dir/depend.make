# Empty dependencies file for fig07_contention_rate.
# This may be replaced when dependencies are built.
