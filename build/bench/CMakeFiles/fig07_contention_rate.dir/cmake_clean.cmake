file(REMOVE_RECURSE
  "CMakeFiles/fig07_contention_rate.dir/fig07_contention_rate.cpp.o"
  "CMakeFiles/fig07_contention_rate.dir/fig07_contention_rate.cpp.o.d"
  "fig07_contention_rate"
  "fig07_contention_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_contention_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
