file(REMOVE_RECURSE
  "CMakeFiles/fig01_ideal_locks.dir/fig01_ideal_locks.cpp.o"
  "CMakeFiles/fig01_ideal_locks.dir/fig01_ideal_locks.cpp.o.d"
  "fig01_ideal_locks"
  "fig01_ideal_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_ideal_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
