# Empty dependencies file for fig01_ideal_locks.
# This may be replaced when dependencies are built.
