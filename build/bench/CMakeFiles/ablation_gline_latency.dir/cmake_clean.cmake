file(REMOVE_RECURSE
  "CMakeFiles/ablation_gline_latency.dir/ablation_gline_latency.cpp.o"
  "CMakeFiles/ablation_gline_latency.dir/ablation_gline_latency.cpp.o.d"
  "ablation_gline_latency"
  "ablation_gline_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gline_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
