# Empty dependencies file for ablation_gline_latency.
# This may be replaced when dependencies are built.
