file(REMOVE_RECURSE
  "CMakeFiles/handoff_latency.dir/handoff_latency.cpp.o"
  "CMakeFiles/handoff_latency.dir/handoff_latency.cpp.o.d"
  "handoff_latency"
  "handoff_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/handoff_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
