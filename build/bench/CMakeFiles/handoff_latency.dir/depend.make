# Empty dependencies file for handoff_latency.
# This may be replaced when dependencies are built.
