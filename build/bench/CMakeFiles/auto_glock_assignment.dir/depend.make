# Empty dependencies file for auto_glock_assignment.
# This may be replaced when dependencies are built.
