file(REMOVE_RECURSE
  "CMakeFiles/auto_glock_assignment.dir/auto_glock_assignment.cpp.o"
  "CMakeFiles/auto_glock_assignment.dir/auto_glock_assignment.cpp.o.d"
  "auto_glock_assignment"
  "auto_glock_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_glock_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
