file(REMOVE_RECURSE
  "CMakeFiles/fig09_network_traffic.dir/fig09_network_traffic.cpp.o"
  "CMakeFiles/fig09_network_traffic.dir/fig09_network_traffic.cpp.o.d"
  "fig09_network_traffic"
  "fig09_network_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_network_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
