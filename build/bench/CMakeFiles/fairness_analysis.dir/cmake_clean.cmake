file(REMOVE_RECURSE
  "CMakeFiles/fairness_analysis.dir/fairness_analysis.cpp.o"
  "CMakeFiles/fairness_analysis.dir/fairness_analysis.cpp.o.d"
  "fairness_analysis"
  "fairness_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairness_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
