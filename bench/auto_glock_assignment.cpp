// Extension experiment: automatic GLock assignment (harness/auto_policy)
// versus the paper's hand annotation. For every benchmark: profile under
// TATAS, bind the GLocks to the measured top-contended locks, and compare
// the resulting execution time against (a) the MCS baseline and (b) the
// paper's manual highly-contended annotation.
#include <cstdio>

#include "bench_support.hpp"
#include "harness/auto_policy.hpp"

int main() {
  using namespace glocks;
  bench::print_header("Auto-assignment of GLocks vs hand annotation "
                      "(32 cores)");
  std::printf("%-7s %-24s %10s %10s %10s\n", "bench", "auto-chosen locks",
              "MCS", "manual GL", "auto GL");

  for (const auto& entry : workloads::registry()) {
    harness::RunConfig cfg = bench::paper_config(locks::LockKind::kMcs);

    const auto auto_result = harness::auto_assign_glocks(entry.make, cfg);
    std::string chosen;
    for (const auto& s : auto_result.scores) {
      if (s.chosen) chosen += (chosen.empty() ? "" : ",") + s.name;
    }
    if (chosen.empty()) chosen = "(none)";

    const auto mcs = bench::run(entry.name, locks::LockKind::kMcs);
    const auto manual = bench::run(entry.name, locks::LockKind::kGlock);

    harness::RunConfig auto_cfg = cfg;
    auto_cfg.policy = auto_result.policy;
    auto wl = entry.make(1.0);
    const auto autorun = harness::run_workload(*wl, auto_cfg);

    std::printf("%-7s %-24s %10llu %10llu %10llu\n", entry.name.c_str(),
                chosen.c_str(),
                static_cast<unsigned long long>(mcs.cycles),
                static_cast<unsigned long long>(manual.cycles),
                static_cast<unsigned long long>(autorun.cycles));
  }
  std::printf("\nThe auto policy should track the manual column: the "
              "profiler rediscovers Table III's H-C annotations.\n");
  return 0;
}
