// Sensitivity study: how robust is the GLocks-vs-MCS result to machine
// parameters the paper fixed in Table II? Sweeps memory latency, L2 tag
// latency, mesh link latency and core count on SCTR, reporting the GL/MCS
// execution-time ratio at each point. The ratio should stay well below 1
// everywhere — the advantage is structural (lock traffic leaves the
// coherence fabric), not an artifact of one configuration.
#include <cstdio>

#include "bench_support.hpp"
#include "workloads/micro.hpp"

namespace {

using namespace glocks;

double ratio_at(const CmpConfig& machine) {
  double cycles[2] = {0, 0};
  int i = 0;
  for (const auto kind :
       {locks::LockKind::kMcs, locks::LockKind::kGlock}) {
    workloads::SingleCounter wl;
    harness::RunConfig cfg;
    cfg.cmp = machine;
    cfg.policy.highly_contended = kind;
    cycles[i++] = static_cast<double>(harness::run_workload(wl, cfg).cycles);
  }
  return cycles[1] / cycles[0];
}

}  // namespace

int main() {
  using namespace glocks;
  bench::print_header("Sensitivity: GL/MCS time ratio on SCTR across "
                      "machine parameters");

  std::printf("\nmemory latency (cycles):\n");
  for (const Cycle ml : {100u, 200u, 400u, 800u}) {
    CmpConfig m;
    m.memory_latency = ml;
    std::printf("  %4llu: GL/MCS = %.3f\n",
                static_cast<unsigned long long>(ml), ratio_at(m));
  }

  std::printf("\nL2 tag latency (cycles):\n");
  for (const Cycle tl : {6u, 12u, 24u}) {
    CmpConfig m;
    m.l2.tag_latency = tl;
    std::printf("  %4llu: GL/MCS = %.3f\n",
                static_cast<unsigned long long>(tl), ratio_at(m));
  }

  std::printf("\nmesh link latency (cycles):\n");
  for (const Cycle ll : {1u, 2u, 4u}) {
    CmpConfig m;
    m.noc.link_latency = ll;
    std::printf("  %4llu: GL/MCS = %.3f\n",
                static_cast<unsigned long long>(ll), ratio_at(m));
  }

  std::printf("\ncore count:\n");
  for (const std::uint32_t c : {8u, 16u, 32u, 49u}) {
    CmpConfig m;
    m.num_cores = c;
    std::printf("  %4u: GL/MCS = %.3f\n", c, ratio_at(m));
  }

  std::printf("\n(the ratio should stay < 1 at every point, improving "
              "with core count and remote-access cost)\n");
  return 0;
}
