// Sensitivity study: how robust is the GLocks-vs-MCS result to machine
// parameters the paper fixed in Table II? Sweeps memory latency, L2 tag
// latency, mesh link latency and core count on SCTR, reporting the GL/MCS
// execution-time ratio at each point. The ratio should stay well below 1
// everywhere — the advantage is structural (lock traffic leaves the
// coherence fabric), not an artifact of one configuration.
#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "workloads/micro.hpp"

namespace {

using namespace glocks;

double run_sctr_cycles(const CmpConfig& machine, locks::LockKind kind) {
  workloads::SingleCounter wl;
  harness::RunConfig cfg;
  cfg.cmp = machine;
  cfg.policy.highly_contended = kind;
  return static_cast<double>(harness::run_workload(wl, cfg).cycles);
}

}  // namespace

int main() {
  using namespace glocks;
  bench::print_header("Sensitivity: GL/MCS time ratio on SCTR across "
                      "machine parameters");

  // Build the whole machine grid first, then run every (machine, lock)
  // point — two per machine — through the job pool at once.
  struct Point {
    const char* group;
    unsigned long long value;
    CmpConfig machine;
  };
  std::vector<Point> points;
  for (const Cycle ml : {100u, 200u, 400u, 800u}) {
    CmpConfig m;
    m.memory_latency = ml;
    points.push_back({"memory latency (cycles):", ml, m});
  }
  for (const Cycle tl : {6u, 12u, 24u}) {
    CmpConfig m;
    m.l2.tag_latency = tl;
    points.push_back({"L2 tag latency (cycles):", tl, m});
  }
  for (const Cycle ll : {1u, 2u, 4u}) {
    CmpConfig m;
    m.noc.link_latency = ll;
    points.push_back({"mesh link latency (cycles):", ll, m});
  }
  for (const std::uint32_t c : {8u, 16u, 32u, 49u}) {
    CmpConfig m;
    m.num_cores = c;
    points.push_back({"core count:", c, m});
  }

  const auto cycles = bench::run_grid<double>(
      points.size() * 2, [&](std::size_t i) {
        return run_sctr_cycles(points[i / 2].machine,
                               i % 2 == 0 ? locks::LockKind::kMcs
                                          : locks::LockKind::kGlock);
      });

  const char* group = "";
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].group != group) {
      group = points[i].group;
      std::printf("\n%s\n", group);
    }
    std::printf("  %4llu: GL/MCS = %.3f\n", points[i].value,
                cycles[2 * i + 1] / cycles[2 * i]);
  }

  std::printf("\n(the ratio should stay < 1 at every point, improving "
              "with core count and remote-access cost)\n");
  return 0;
}
