// Fairness study: the paper claims GLocks provide "an extremely efficient
// and completely fair behavior" (two-level round-robin). This bench
// quantifies it: every thread acquires a single hot lock in a free
// running loop until a fixed simulated deadline, and fairness is Jain's
// index over the per-thread acquire counts (1.0 = perfectly even). Spin
// locks are expected to skew towards requesters near the lock's home
// tile; queue locks and GLocks should stay near 1.0.
#include <algorithm>
#include <cstdio>

#include "bench_support.hpp"
#include "harness/workload.hpp"

namespace {

using namespace glocks;
using core::Task;
using core::ThreadApi;

class FreeRunCounter final : public harness::Workload {
 public:
  explicit FreeRunCounter(Cycle deadline) : deadline_(deadline) {}
  std::string name() const override { return "FREERUN"; }
  std::uint32_t num_locks() const override { return 1; }
  std::uint32_t num_hc_locks() const override { return 1; }

  void setup(harness::WorkloadContext& ctx) override {
    counter_ = ctx.heap().alloc_line();
    lock_ = &ctx.make_lock("hot", /*highly_contended=*/true);
  }
  Task<void> thread_body(ThreadApi& t, harness::WorkloadContext&) override {
    return run(t, this);
  }
  void verify(harness::WorkloadContext& ctx) override {
    GLOCKS_CHECK(ctx.peek(counter_) == lock_->stats().acquires,
                 "lost updates under " << lock_->kind_name());
  }

 private:
  static Task<void> run(ThreadApi& t, FreeRunCounter* self) {
    while (t.now() < self->deadline_) {
      co_await self->lock_->acquire(t);
      const Word v = co_await t.load(self->counter_);
      co_await t.store(self->counter_, v + 1);
      co_await self->lock_->release(t);
      co_await t.compute(5);
    }
  }

  Cycle deadline_;
  Addr counter_ = 0;
  locks::Lock* lock_ = nullptr;
};

}  // namespace

int main() {
  bench::print_header("Fairness: Jain's index over per-thread acquires "
                      "(hot lock, 32 cores, fixed 150k-cycle window)");
  std::printf("%-14s %8s %8s %10s %10s   (1.0 = perfectly fair)\n", "lock",
              "acquires", "jain", "min/thr", "max/thr");

  for (const auto kind :
       {locks::LockKind::kSimple, locks::LockKind::kTatas,
        locks::LockKind::kTatasBackoff, locks::LockKind::kTicket,
        locks::LockKind::kMcs, locks::LockKind::kClh, locks::LockKind::kSb,
        locks::LockKind::kGlock}) {
    FreeRunCounter wl(150000);
    harness::RunConfig cfg = bench::paper_config(kind);
    const auto r = harness::run_workload(wl, cfg);
    const auto& lc = r.lock_census[0];
    std::printf("%-14s %8llu %8.4f %10llu %10llu\n",
                std::string(locks::to_string(kind)).c_str(),
                static_cast<unsigned long long>(lc.acquires),
                lc.jain_fairness,
                static_cast<unsigned long long>(lc.min_thread_acquires),
                static_cast<unsigned long long>(lc.max_thread_acquires));
  }
  std::printf("\n(queue locks and GLocks sit near 1.0; raw spin locks "
              "skew towards cores close to the lock's home tile)\n");
  return 0;
}
