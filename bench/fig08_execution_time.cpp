// Reproduces paper Figure 8: normalized execution time of every benchmark
// with GLocks (GL) vs MCS locks for the highly-contended locks, broken
// down into Busy / Memory / Barrier / Lock categories. Also prints the
// microbenchmark and application averages (AvgM / AvgA).
#include <cstdio>
#include <vector>

#include "bench_support.hpp"

int main() {
  using namespace glocks;
  bench::print_header(
      "Figure 8: normalized execution time (GL vs MCS, 32 cores)");
  std::printf("%-7s %-4s %8s %8s  %6s %6s %6s %6s\n", "bench", "cfg",
              "cycles", "norm", "busy", "mem", "barr", "lock");

  const auto pairs = bench::run_registry_pairs();

  std::vector<double> micro_norm, app_norm;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto& entry = workloads::registry()[i];
    const auto& [mcs, gl] = pairs[i];
    const double norm = static_cast<double>(gl.cycles) /
                        static_cast<double>(mcs.cycles);
    for (const auto* r : {&mcs, &gl}) {
      std::printf("%-7s %-4s %8llu %8.3f  %6.3f %6.3f %6.3f %6.3f\n",
                  entry.name.c_str(), r == &mcs ? "MCS" : "GL",
                  static_cast<unsigned long long>(r->cycles),
                  r == &mcs ? 1.0 : norm, r->busy_fraction(),
                  r->memory_fraction(), r->barrier_fraction(),
                  r->lock_fraction());
    }
    (entry.is_microbenchmark ? micro_norm : app_norm).push_back(norm);
  }

  const double avg_m = bench::mean(micro_norm);
  const double avg_a = bench::mean(app_norm);
  std::printf("\nAvgM (microbenchmarks): normalized time %.3f "
              "(paper: ~0.58, i.e. 42%% reduction)\n", avg_m);
  std::printf("AvgA (applications):    normalized time %.3f "
              "(paper: ~0.86, i.e. 14%% reduction)\n", avg_a);
  std::printf("\nReduction in execution time: micro %.1f%%, apps %.1f%%\n",
              100.0 * (1.0 - avg_m), 100.0 * (1.0 - avg_a));
  return 0;
}
