// Ablation for the paper's second future-work item (Section V):
// multiprogrammed workloads sharing a few GLocks.
//
// Scenario: two independent "programs" co-scheduled on one 32-core CMP,
// each on 16 cores, each hammering its own two highly-contended counters
// (so 4 logical hot locks compete for 2 physical GLocks). Three policies:
//
//   mcs      no hardware: all four locks are MCS
//   static   GLocks pinned to program A's locks; program B gets MCS
//   dynamic  VirtualGlockPool: bindings move to whoever is active,
//            with TATAS fallback when both physical locks are busy
#include <cstdio>
#include <vector>

#include "harness/cmp_system.hpp"
#include "harness/runner.hpp"
#include "locks/virtual_glock.hpp"

namespace {

using namespace glocks;
using core::Task;
using core::ThreadApi;

struct Program {
  locks::Lock* lock[2] = {nullptr, nullptr};
  Addr counter[2] = {0, 0};
  std::uint64_t iters = 40;
};

// Phased execution: each program alternates bursts on its two locks, so a
// dynamic pool can shuffle bindings between the four logical locks.
Task<void> program_thread(ThreadApi& t, Program* prog) {
  for (std::uint64_t i = 0; i < prog->iters; ++i) {
    const int which = static_cast<int>((i / 8) % 2);  // burst of 8
    auto& lock = *prog->lock[which];
    co_await lock.acquire(t);
    const Word v = co_await t.load(prog->counter[which]);
    co_await t.store(prog->counter[which], v + 1);
    co_await lock.release(t);
    co_await t.compute(20);
  }
}

struct Result {
  Cycle cycles;
  std::uint64_t traffic;
};

Result run_policy(const char* policy) {
  CmpConfig cfg;
  harness::CmpSystem sys(cfg);
  harness::LockPolicy lp;
  harness::WorkloadContext ctx(sys, lp, 1);

  locks::VirtualGlockPool pool(cfg.gline.num_glocks);
  std::vector<std::unique_ptr<locks::Lock>> owned;
  locks::GlockAllocator galloc(cfg.gline.num_glocks);

  Program progs[2];
  for (int pgm = 0; pgm < 2; ++pgm) {
    for (int l = 0; l < 2; ++l) {
      progs[pgm].counter[l] = ctx.heap().alloc_line();
      locks::Lock* lock = nullptr;
      const std::string name =
          "P" + std::to_string(pgm) + "-L" + std::to_string(l);
      if (std::string(policy) == "dynamic") {
        lock = &pool.create(ctx.heap(), name);
      } else if (std::string(policy) == "static" && pgm == 0) {
        owned.push_back(locks::make_lock(locks::LockKind::kGlock, name,
                                         ctx.heap(), 32, &galloc));
        lock = owned.back().get();
      } else {
        owned.push_back(locks::make_lock(locks::LockKind::kMcs, name,
                                         ctx.heap(), 32));
        lock = owned.back().get();
      }
      progs[pgm].lock[l] = lock;
    }
  }

  for (CoreId c = 0; c < 32; ++c) {
    Program* prog = &progs[c < 16 ? 0 : 1];
    sys.core(c).bind(c, 32, sys.hierarchy().l1(c),
                     [prog](ThreadApi& t) {
                       return program_thread(t, prog);
                     });
  }
  const Cycle cycles = sys.run();

  for (int pgm = 0; pgm < 2; ++pgm) {
    // Burst-of-8 alternation: count the iterations that hit each lock.
    std::uint64_t expect[2] = {0, 0};
    for (std::uint64_t i = 0; i < progs[pgm].iters; ++i) {
      ++expect[(i / 8) % 2];
    }
    for (int l = 0; l < 2; ++l) {
      const Word v = sys.hierarchy().coherent_peek(progs[pgm].counter[l]);
      GLOCKS_CHECK(v == 16 * expect[l],
                   "counter mismatch under policy " << policy << ": " << v);
    }
  }
  if (std::string(policy) == "dynamic") {
    std::printf("  (dynamic pool: %llu binds, %llu steals, %llu software "
                "activations)\n",
                static_cast<unsigned long long>(pool.binds()),
                static_cast<unsigned long long>(pool.steals()),
                static_cast<unsigned long long>(
                    pool.software_activations()));
  }
  return Result{cycles, sys.mesh().stats().total_bytes()};
}

}  // namespace

int main() {
  std::printf(
      "================================================================\n"
      "Ablation: multiprogrammed GLock sharing (paper Section V)\n"
      "two 16-core programs, four hot locks, two physical GLocks\n"
      "================================================================\n");
  std::printf("%-9s %10s %8s %14s\n", "policy", "cycles", "norm",
              "traffic(B)");
  double base = 0;
  for (const char* policy : {"mcs", "static", "dynamic"}) {
    const Result r = run_policy(policy);
    if (base == 0) base = static_cast<double>(r.cycles);
    std::printf("%-9s %10llu %8.3f %14llu\n", policy,
                static_cast<unsigned long long>(r.cycles),
                static_cast<double>(r.cycles) / base,
                static_cast<unsigned long long>(r.traffic));
  }
  std::printf("\nStatic pinning helps only the program holding the "
              "hardware; the dynamic pool lets both programs benefit.\n");
  return 0;
}
