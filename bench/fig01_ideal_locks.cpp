// Reproduces paper Figure 1: the motivation experiment. Raytrace runs
// with four lock configurations:
//   TATAS    all locks test-and-test&set
//   TATAS-1  the most contended lock (the ray dispenser) becomes ideal
//   TATAS-2  both highly-contended locks become ideal
//   IDEAL    every lock is ideal
// Execution time is normalized to TATAS and the lock fraction is shown —
// the paper's point is that TATAS-2 already recovers nearly all of
// IDEAL's benefit, so only highly-contended locks need hardware support.
#include <cstdio>

#include "bench_support.hpp"
#include "workloads/apps.hpp"

int main() {
  using namespace glocks;
  bench::print_header("Figure 1: potential benefit of ideal locks "
                      "(Raytrace-like, 32 cores)");

  struct Config {
    const char* name;
    locks::LockKind hc;
    locks::LockKind regular;
    std::map<std::string, locks::LockKind> overrides;
  };
  const Config configs[] = {
      {"TATAS", locks::LockKind::kTatas, locks::LockKind::kTatas, {}},
      {"TATAS-1",
       locks::LockKind::kTatas,
       locks::LockKind::kTatas,
       {{"RAYTR-L1", locks::LockKind::kIdeal}}},
      {"TATAS-2",
       locks::LockKind::kIdeal,  // both H-C locks ideal
       locks::LockKind::kTatas,
       {}},
      {"IDEAL", locks::LockKind::kIdeal, locks::LockKind::kIdeal, {}},
  };

  std::printf("%-8s %10s %8s %8s   %s\n", "config", "cycles", "norm",
              "lock", "normalized time");
  double base = 0;
  for (const auto& c : configs) {
    workloads::RaytraceLike wl;
    harness::RunConfig cfg = bench::paper_config(c.hc);
    cfg.policy.regular = c.regular;
    cfg.policy.overrides = c.overrides;
    const auto r = harness::run_workload(wl, cfg);
    if (base == 0) base = static_cast<double>(r.cycles);
    const double norm = static_cast<double>(r.cycles) / base;
    std::printf("%-8s %10llu %8.3f %8.3f   ", c.name,
                static_cast<unsigned long long>(r.cycles), norm,
                r.lock_fraction());
    for (int i = 0; i < static_cast<int>(norm * 40); ++i) std::printf("#");
    std::printf("\n");
  }
  std::printf("\n(paper: TATAS-2 approaches IDEAL because only 2 of the 34 "
              "locks are highly contended)\n");
  return 0;
}
