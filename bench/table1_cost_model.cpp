// Reproduces paper Table I: the hardware/software cost of GLocks on a
// 2D-mesh layout, both analytically (CostModel) and as measured from a
// constructed GlockUnit (G-line count must match C - 1).
#include <cstdio>

#include "bench_support.hpp"
#include "gline/gline_system.hpp"
#include "harness/cmp_system.hpp"

int main() {
  using namespace glocks;
  bench::print_header("Table I: HW/SW cost of GLocks per lock "
                      "(2D-mesh CMP layout)");
  for (const std::uint32_t c : {9u, 16u, 32u, 49u}) {
    const auto m = gline::CostModel::for_cores(c);
    std::printf("\n--- C = %u cores ---\n%s", c, m.to_table().c_str());

    // Cross-check the analytic wire count against the built hardware.
    CmpConfig cfg;
    cfg.num_cores = c;
    harness::CmpSystem sys(cfg);
    std::printf("measured G-lines in the built unit: %u "
                "(analytic C-1 = %u)\n",
                sys.glines().unit(0).num_glines(), m.glines);
    std::printf("measured secondary managers:        %u\n",
                sys.glines().unit(0).num_secondary_managers());
  }
  return 0;
}
