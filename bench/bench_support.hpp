// Shared helpers for the table/figure reproduction binaries.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "exec/parallel_for.hpp"
#include "harness/runner.hpp"
#include "workloads/registry.hpp"

namespace glocks::bench {

/// Table II machine + the paper's default policies.
inline harness::RunConfig paper_config(
    locks::LockKind hc = locks::LockKind::kMcs) {
  harness::RunConfig cfg;
  cfg.policy.highly_contended = hc;
  cfg.policy.regular = locks::LockKind::kTatas;
  return cfg;
}

/// Runs one registered benchmark under the given highly-contended lock
/// implementation at `num_cores` cores.
inline harness::RunResult run(const std::string& workload,
                              locks::LockKind hc,
                              std::uint32_t num_cores = 32,
                              double scale = 1.0) {
  auto wl = workloads::make_workload(workload, scale);
  harness::RunConfig cfg = paper_config(hc);
  cfg.cmp.num_cores = num_cores;
  return harness::run_workload(*wl, cfg);
}

/// Fans `n` independent simulations out across the job pool
/// (GLOCKS_JOBS env or nproc workers) and returns the results in index
/// order — every grid-shaped bench computes its whole grid up front and
/// then prints sequentially, so stdout bytes match the old serial loops
/// exactly.
template <typename T>
std::vector<T> run_grid(std::size_t n,
                        const std::function<T(std::size_t)>& point) {
  return exec::parallel_map<T>(n, exec::default_jobs(), point);
}

/// The fig08/09/10 shape: every registry workload under two
/// highly-contended lock kinds at 32 cores, returned as
/// {baseline, challenger} per registry entry (registry order).
inline std::vector<std::pair<harness::RunResult, harness::RunResult>>
run_registry_pairs(locks::LockKind baseline = locks::LockKind::kMcs,
                   locks::LockKind challenger = locks::LockKind::kGlock,
                   std::uint32_t num_cores = 32) {
  const auto& reg = workloads::registry();
  auto flat = run_grid<harness::RunResult>(
      reg.size() * 2, [&](std::size_t i) {
        return run(reg[i / 2].name, i % 2 == 0 ? baseline : challenger,
                   num_cores);
      });
  std::vector<std::pair<harness::RunResult, harness::RunResult>> out;
  out.reserve(reg.size());
  for (std::size_t i = 0; i < reg.size(); ++i) {
    out.emplace_back(std::move(flat[2 * i]), std::move(flat[2 * i + 1]));
  }
  return out;
}

inline void print_header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

inline void print_bar_row(const std::string& name, double value,
                          double scale = 50.0) {
  std::printf("  %-10s %6.3f  |", name.c_str(), value);
  const int n = static_cast<int>(value * scale + 0.5);
  for (int i = 0; i < n && i < 100; ++i) std::printf("#");
  std::printf("\n");
}

/// Geometric-free average (arithmetic mean, as the paper reports).
inline double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

}  // namespace glocks::bench
