// Shared helpers for the table/figure reproduction binaries.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "workloads/registry.hpp"

namespace glocks::bench {

/// Table II machine + the paper's default policies.
inline harness::RunConfig paper_config(
    locks::LockKind hc = locks::LockKind::kMcs) {
  harness::RunConfig cfg;
  cfg.policy.highly_contended = hc;
  cfg.policy.regular = locks::LockKind::kTatas;
  return cfg;
}

/// Runs one registered benchmark under the given highly-contended lock
/// implementation at `num_cores` cores.
inline harness::RunResult run(const std::string& workload,
                              locks::LockKind hc,
                              std::uint32_t num_cores = 32,
                              double scale = 1.0) {
  auto wl = workloads::make_workload(workload, scale);
  harness::RunConfig cfg = paper_config(hc);
  cfg.cmp.num_cores = num_cores;
  return harness::run_workload(*wl, cfg);
}

inline void print_header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

inline void print_bar_row(const std::string& name, double value,
                          double scale = 50.0) {
  std::printf("  %-10s %6.3f  |", name.c_str(), value);
  const int n = static_cast<int>(value * scale + 0.5);
  for (int i = 0; i < n && i < 100; ++i) std::printf("#");
  std::printf("\n");
}

/// Geometric-free average (arithmetic mean, as the paper reports).
inline double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

}  // namespace glocks::bench
