// Reproduces paper Figure 7: the locks' contention rate (LCR). Every
// benchmark runs with test-and-test&set for all of its locks (the paper's
// post-mortem methodology), the census samples the number of concurrent
// requesters (grAC) of every lock each cycle, and the per-lock LCR is the
// fraction of total lock-activity cycles at each grAC (paper eq. 3).
//
// Output: per lock, the LCR mass in grAC bands, plus the aggregate
// contention at grAC > 20 the paper quotes in the text (SCTR-like micros
// ~80%, ACTR ~20%, QSORT ~60%, RAYTR ~29%).
#include <cstdio>

#include "bench_support.hpp"

int main() {
  using namespace glocks;
  bench::print_header(
      "Figure 7: locks' contention rate per grAC band (TATAS, 32 cores)");
  std::printf("%-7s %-10s %8s | %6s %6s %6s %6s %6s %6s | %7s\n", "bench",
              "lock", "acqs", "1", "2-4", "5-8", "9-16", "17-24", "25-32",
              ">20");

  for (const auto& entry : workloads::registry()) {
    // Quarter-scale inputs: the LCR distribution is scale-invariant and
    // the all-TATAS baseline is pathologically slow at full size (which
    // is the paper's very motivation).
    auto wl = workloads::make_workload(entry.name, 0.25);
    harness::RunConfig cfg = bench::paper_config(locks::LockKind::kTatas);
    const auto r = harness::run_workload(*wl, cfg);

    // Denominator of eq. 3: lock-activity cycles summed over all locks.
    std::uint64_t total = 0;
    for (const auto& lc : r.lock_census) total += lc.census.total(1);
    if (total == 0) continue;

    // Like the paper, aggregate Raytrace's 32 low-contention locks into
    // a single RAYTR-LR row.
    Histogram aggregated(32);
    std::uint64_t agg_acqs = 0;
    bool has_agg = false;
    auto print_row = [&](const std::string& name, const Histogram& h,
                         std::uint64_t acqs) {
      auto band = [&](std::uint32_t lo, std::uint32_t hi) {
        return static_cast<double>(h.total(lo, hi)) /
               static_cast<double>(total);
      };
      std::printf("%-7s %-10s %8llu | %6.3f %6.3f %6.3f %6.3f %6.3f %6.3f "
                  "| %6.1f%%\n",
                  entry.name.c_str(), name.c_str(),
                  static_cast<unsigned long long>(acqs), band(1, 1),
                  band(2, 4), band(5, 8), band(9, 16), band(17, 24),
                  band(25, 32), 100.0 * band(21, 32));
    };
    for (const auto& lc : r.lock_census) {
      if (lc.name.rfind("RAYTR-LR", 0) == 0) {
        has_agg = true;
        agg_acqs += lc.acquires;
        for (std::uint32_t b = 1; b <= 32; ++b) {
          aggregated.add(b, lc.census.count(b));
        }
        continue;
      }
      print_row(lc.name, lc.census, lc.acquires);
    }
    if (has_agg) print_row("RAYTR-LR*", aggregated, agg_acqs);
  }
  std::printf("\n(paper text: SCTR/MCTR/DBLL/PRCO ~80%% at grAC>20, ACTR "
              "~20%%, QSORT ~60%%, RAYTR ~29%%)\n");
  return 0;
}
