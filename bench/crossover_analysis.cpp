// Crossover study: why the paper's final design is a *hybrid*
// (Section V: "While GLocks provide lightning-fast lock acquisition and
// release for highly-contended locks, the Simple Locks result in the
// best performance for low-contended locks").
//
// Sweeps the contention level on SCTR two ways — think time between
// critical sections, and number of contending cores — and reports the
// per-critical-section cost of TATAS vs MCS vs GLock. TATAS should win
// or tie when contention vanishes (its uncontended fast path is one
// cached test&set, with no queue or token machinery), while GLocks take
// over as contention rises; MCS pays its queue overhead at both ends.
#include <cstdio>
#include <string>

#include "bench_support.hpp"
#include "workloads/micro.hpp"

namespace {

using namespace glocks;

double per_cs_cycles(locks::LockKind kind, std::uint32_t cores,
                     std::uint64_t think) {
  workloads::MicroParams p;
  p.total_iterations = 640;
  p.think_cycles = think;
  workloads::SingleCounter wl(p);
  harness::RunConfig cfg = bench::paper_config(kind);
  cfg.cmp.num_cores = cores;
  const auto r = harness::run_workload(wl, cfg);
  // Subtract the think time each thread spends outside the lock so the
  // number isolates synchronization + critical-section cost.
  const double total = static_cast<double>(r.cycles);
  const double per_thread_iters =
      static_cast<double>(p.total_iterations) / cores;
  return (total - static_cast<double>(think) * per_thread_iters) /
         static_cast<double>(p.total_iterations) * cores;
}

}  // namespace

int main() {
  bench::print_header("Crossover: when does each lock win? "
                      "(SCTR, per-thread cost per critical section)");

  // Both sweeps flattened into one (point x lock-kind) grid for the job
  // pool; rows print afterwards in sweep order.
  const locks::LockKind kinds[] = {locks::LockKind::kTatas,
                                   locks::LockKind::kMcs,
                                   locks::LockKind::kGlock};
  const std::uint64_t thinks[] = {0ull, 200ull, 1000ull, 5000ull, 20000ull};
  const std::uint32_t core_counts[] = {1u, 2u, 4u, 9u, 16u, 32u};
  constexpr std::size_t kThinkRows = std::size(thinks);
  const std::size_t total = (kThinkRows + std::size(core_counts)) * 3;
  const auto costs = bench::run_grid<double>(total, [&](std::size_t i) {
    const auto kind = kinds[i % 3];
    const std::size_t row = i / 3;
    return row < kThinkRows
               ? per_cs_cycles(kind, 32, thinks[row])
               : per_cs_cycles(kind, core_counts[row - kThinkRows], 0);
  });

  std::printf("\nsweep 1: think time between CSs (32 cores)\n");
  std::printf("%-10s %10s %10s %10s\n", "think", "tatas", "mcs", "glock");
  for (std::size_t row = 0; row < kThinkRows; ++row) {
    std::printf("%-10llu", static_cast<unsigned long long>(thinks[row]));
    for (std::size_t k = 0; k < 3; ++k) {
      std::printf(" %10.0f", costs[row * 3 + k]);
    }
    std::printf("\n");
  }

  std::printf("\nsweep 2: contending cores (no think time)\n");
  std::printf("%-10s %10s %10s %10s\n", "cores", "tatas", "mcs", "glock");
  for (std::size_t row = 0; row < std::size(core_counts); ++row) {
    std::printf("%-10u", core_counts[row]);
    for (std::size_t k = 0; k < 3; ++k) {
      std::printf(" %10.0f", costs[(kThinkRows + row) * 3 + k]);
    }
    std::printf("\n");
  }
  std::printf("\n(the hybrid policy: TATAS for quiet locks — cheapest "
              "uncontended fast path — and GLocks where contention "
              "concentrates)\n");
  return 0;
}
