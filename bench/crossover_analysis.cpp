// Crossover study: why the paper's final design is a *hybrid*
// (Section V: "While GLocks provide lightning-fast lock acquisition and
// release for highly-contended locks, the Simple Locks result in the
// best performance for low-contended locks").
//
// Sweeps the contention level on SCTR two ways — think time between
// critical sections, and number of contending cores — and reports the
// per-critical-section cost of TATAS vs MCS vs GLock. TATAS should win
// or tie when contention vanishes (its uncontended fast path is one
// cached test&set, with no queue or token machinery), while GLocks take
// over as contention rises; MCS pays its queue overhead at both ends.
#include <cstdio>
#include <string>

#include "bench_support.hpp"
#include "workloads/micro.hpp"

namespace {

using namespace glocks;

double per_cs_cycles(locks::LockKind kind, std::uint32_t cores,
                     std::uint64_t think) {
  workloads::MicroParams p;
  p.total_iterations = 640;
  p.think_cycles = think;
  workloads::SingleCounter wl(p);
  harness::RunConfig cfg = bench::paper_config(kind);
  cfg.cmp.num_cores = cores;
  const auto r = harness::run_workload(wl, cfg);
  // Subtract the think time each thread spends outside the lock so the
  // number isolates synchronization + critical-section cost.
  const double total = static_cast<double>(r.cycles);
  const double per_thread_iters =
      static_cast<double>(p.total_iterations) / cores;
  return (total - static_cast<double>(think) * per_thread_iters) /
         static_cast<double>(p.total_iterations) * cores;
}

}  // namespace

int main() {
  bench::print_header("Crossover: when does each lock win? "
                      "(SCTR, per-thread cost per critical section)");

  std::printf("\nsweep 1: think time between CSs (32 cores)\n");
  std::printf("%-10s %10s %10s %10s\n", "think", "tatas", "mcs", "glock");
  for (const std::uint64_t think : {0ull, 200ull, 1000ull, 5000ull,
                                    20000ull}) {
    std::printf("%-10llu", static_cast<unsigned long long>(think));
    for (const auto kind :
         {locks::LockKind::kTatas, locks::LockKind::kMcs,
          locks::LockKind::kGlock}) {
      std::printf(" %10.0f", per_cs_cycles(kind, 32, think));
    }
    std::printf("\n");
  }

  std::printf("\nsweep 2: contending cores (no think time)\n");
  std::printf("%-10s %10s %10s %10s\n", "cores", "tatas", "mcs", "glock");
  for (const std::uint32_t cores : {1u, 2u, 4u, 9u, 16u, 32u}) {
    std::printf("%-10u", cores);
    for (const auto kind :
         {locks::LockKind::kTatas, locks::LockKind::kMcs,
          locks::LockKind::kGlock}) {
      std::printf(" %10.0f", per_cs_cycles(kind, cores, 0));
    }
    std::printf("\n");
  }
  std::printf("\n(the hybrid policy: TATAS for quiet locks — cheapest "
              "uncontended fast path — and GLocks where contention "
              "concentrates)\n");
  return 0;
}
