// The full hardware story: every benchmark under the best software lock
// (MCS) and all three hardware schemes — SB (hardware queue, grants via
// the home over the main network), QOLB (hardware queue, direct
// cache-to-cache handoff), GLocks (dedicated G-line network). This is the
// comparison the paper's Section II sets up verbally; each column to the
// right removes one more main-network cost from the lock path.
#include <cstdio>
#include <vector>

#include "bench_support.hpp"

int main() {
  using namespace glocks;
  bench::print_header("Hardware lock schemes across all benchmarks "
                      "(execution time normalized to MCS, 32 cores)");
  std::printf("%-7s %8s %8s %8s %8s\n", "bench", "mcs", "sb", "qolb",
              "glock");

  const locks::LockKind kinds[] = {locks::LockKind::kMcs,
                                   locks::LockKind::kSb,
                                   locks::LockKind::kQolb,
                                   locks::LockKind::kGlock};
  std::vector<double> sums(4, 0.0);
  int n = 0;
  for (const auto& entry : workloads::registry()) {
    std::printf("%-7s", entry.name.c_str());
    double base = 0;
    for (std::size_t k = 0; k < 4; ++k) {
      const auto r = bench::run(entry.name, kinds[k]);
      if (k == 0) base = static_cast<double>(r.cycles);
      const double norm = static_cast<double>(r.cycles) / base;
      sums[k] += norm;
      std::printf(" %8.3f", norm);
    }
    std::printf("\n");
    ++n;
  }
  std::printf("%-7s", "Avg");
  for (std::size_t k = 0; k < 4; ++k) {
    std::printf(" %8.3f", sums[k] / n);
  }
  std::printf("\n\n(each column removes one main-network cost: SB = local "
              "spin, QOLB = +direct handoff,\nGLocks = lock traffic off "
              "the data network entirely)\n");
  return 0;
}
