// Reproduces paper Figure 10: energy-delay^2 product (ED2P) for the full
// CMP, normalized to MCS. The energy model covers cores, caches,
// directory, interconnect, off-chip memory and the G-line network
// (constants documented in power/energy_model.hpp).
#include <cstdio>
#include <vector>

#include "bench_support.hpp"

int main() {
  using namespace glocks;
  bench::print_header("Figure 10: normalized ED2P for the full CMP "
                      "(GL vs MCS, 32 cores)");
  std::printf("%-7s %10s %10s %8s   %s\n", "bench", "E(uJ) MCS", "E(uJ) GL",
              "ED2P", "(GL normalized to MCS)");

  const auto pairs = bench::run_registry_pairs();

  std::vector<double> micro_norm, app_norm;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto& entry = workloads::registry()[i];
    const auto& [mcs, gl] = pairs[i];
    const double norm = gl.ed2p / mcs.ed2p;
    std::printf("%-7s %10.2f %10.2f %8.3f\n", entry.name.c_str(),
                mcs.energy.total() / 1e6, gl.energy.total() / 1e6, norm);
    (entry.is_microbenchmark ? micro_norm : app_norm).push_back(norm);
  }

  std::printf("\nAvgM: normalized ED2P %.3f (paper: ~0.22, i.e. 78%% "
              "reduction)\n", bench::mean(micro_norm));
  std::printf("AvgA: normalized ED2P %.3f (paper: ~0.72, i.e. 28%% "
              "reduction)\n", bench::mean(app_norm));
  return 0;
}
