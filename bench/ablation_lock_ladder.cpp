// Ablation: the whole software-lock ladder (Section II's related work)
// against GLocks on SCTR and ACTR. Shows the classic trade-off the paper
// describes — simple locks collapse under contention, queue locks scale
// but pay constant overhead, GLocks dominate both — and quantifies where
// each algorithm's traffic goes.
#include <cstdio>

#include "bench_support.hpp"

int main() {
  using namespace glocks;
  bench::print_header("Ablation: lock algorithm ladder on SCTR and ACTR "
                      "(32 cores)");

  const auto& kinds = locks::all_lock_kinds();

  for (const char* wl : {"SCTR", "ACTR"}) {
    std::printf("\n--- %s ---\n", wl);
    std::printf("%-14s %10s %8s %14s %10s\n", "lock", "cycles", "norm",
                "traffic(B)", "ED2P norm");
    double base_cycles = 0, base_ed2p = 0;
    for (const locks::LockKind k : kinds) {
      const auto r = bench::run(wl, k);
      if (base_cycles == 0) {
        base_cycles = static_cast<double>(r.cycles);
        base_ed2p = r.ed2p;
      }
      std::printf("%-14s %10llu %8.3f %14llu %10.3f\n",
                  std::string(locks::to_string(k)).c_str(),
                  static_cast<unsigned long long>(r.cycles),
                  static_cast<double>(r.cycles) / base_cycles,
                  static_cast<unsigned long long>(r.traffic.total_bytes()),
                  r.ed2p / base_ed2p);
    }
  }
  return 0;
}
