// Reproduces paper Table IV: speedups of the three applications at
// 4/8/16/32 cores with MCS vs GLocks for the highly-contended locks.
// Speedup = T(1 core) / T(n cores) with the same lock configuration.
#include <cstdio>

#include "bench_support.hpp"

int main() {
  using namespace glocks;
  bench::print_header("Table IV: application speedups (MCS vs GL)");
  std::printf("%-9s %-5s %8s %8s %8s %8s\n", "bench", "lock", "4", "8",
              "16", "32");

  for (const auto& name : workloads::application_names()) {
    for (const locks::LockKind kind :
         {locks::LockKind::kMcs, locks::LockKind::kGlock}) {
      const auto t1 = bench::run(name, kind, 1);
      std::printf("%-9s %-5s ", name.c_str(),
                  kind == locks::LockKind::kMcs ? "MCS" : "GL");
      for (const std::uint32_t cores : {4u, 8u, 16u, 32u}) {
        const auto tn = bench::run(name, kind, cores);
        std::printf("%8.2f ", static_cast<double>(t1.cycles) /
                                  static_cast<double>(tn.cycles));
      }
      std::printf("\n");
    }
  }
  std::printf("\n(paper at 32 cores: RAYTR 20.69/28.78, OCEAN 23.62/25.66, "
              "QSORT 11.38/12.40 for MCS/GL)\n");
  return 0;
}
