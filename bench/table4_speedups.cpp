// Reproduces paper Table IV: speedups of the three applications at
// 4/8/16/32 cores with MCS vs GLocks for the highly-contended locks.
// Speedup = T(1 core) / T(n cores) with the same lock configuration.
#include <cstdio>

#include "bench_support.hpp"

int main() {
  using namespace glocks;
  bench::print_header("Table IV: application speedups (MCS vs GL)");
  std::printf("%-9s %-5s %8s %8s %8s %8s\n", "bench", "lock", "4", "8",
              "16", "32");

  // Full (application x lock x core-count) grid, one independent
  // simulation per point, fanned out across the job pool.
  const auto apps = workloads::application_names();
  const locks::LockKind kinds[] = {locks::LockKind::kMcs,
                                   locks::LockKind::kGlock};
  const std::uint32_t core_counts[] = {1u, 4u, 8u, 16u, 32u};
  constexpr std::size_t kCols = std::size(core_counts);
  const auto cycles = bench::run_grid<double>(
      apps.size() * std::size(kinds) * kCols, [&](std::size_t i) {
        const auto& name = apps[i / (std::size(kinds) * kCols)];
        const auto kind = kinds[i / kCols % std::size(kinds)];
        return static_cast<double>(
            bench::run(name, kind, core_counts[i % kCols]).cycles);
      });

  std::size_t row = 0;
  for (const auto& name : apps) {
    for (const locks::LockKind kind : kinds) {
      const double* t = &cycles[row * kCols];
      std::printf("%-9s %-5s ", name.c_str(),
                  kind == locks::LockKind::kMcs ? "MCS" : "GL");
      for (std::size_t c = 1; c < kCols; ++c) {
        std::printf("%8.2f ", t[0] / t[c]);
      }
      std::printf("\n");
      ++row;
    }
  }
  std::printf("\n(paper at 32 cores: RAYTR 20.69/28.78, OCEAN 23.62/25.66, "
              "QSORT 11.38/12.40 for MCS/GL)\n");
  return 0;
}
