// Ablation: barrier implementations on the barrier-heavy ACTR benchmark
// (the only Table III workload with a barrier in its inner loop), under
// both lock policies. The hardware G-line barrier is the authors' prior
// mechanism ([22], ICPP 2010), which the GLocks architecture extends:
// combining both shows the full "dedicated synchronization network" story
// (locks + barriers off the coherence fabric entirely).
#include <cstdio>
#include <string>

#include "bench_support.hpp"
#include "workloads/micro.hpp"

int main() {
  using namespace glocks;
  bench::print_header("Ablation: barrier implementations on ACTR "
                      "(32 cores)");
  std::printf("%-9s %-8s %10s %8s %7s %7s %14s\n", "barrier", "locks",
              "cycles", "norm", "barr", "lock", "traffic(B)");

  double base = 0;
  for (const sync::BarrierKind bk :
       {sync::BarrierKind::kCentral, sync::BarrierKind::kTree,
        sync::BarrierKind::kGline}) {
    for (const locks::LockKind lk :
         {locks::LockKind::kMcs, locks::LockKind::kGlock}) {
      workloads::MicroParams p;
      p.barrier = bk;
      workloads::AffinityCounter wl(p);
      harness::RunConfig cfg = bench::paper_config(lk);
      const auto r = harness::run_workload(wl, cfg);
      if (base == 0) base = static_cast<double>(r.cycles);
      const char* bname = bk == sync::BarrierKind::kCentral ? "central"
                          : bk == sync::BarrierKind::kTree  ? "tree"
                                                            : "g-line";
      std::printf("%-9s %-8s %10llu %8.3f %7.3f %7.3f %14llu\n", bname,
                  lk == locks::LockKind::kMcs ? "MCS" : "GL",
                  static_cast<unsigned long long>(r.cycles),
                  static_cast<double>(r.cycles) / base,
                  r.barrier_fraction(), r.lock_fraction(),
                  static_cast<unsigned long long>(r.traffic.total_bytes()));
    }
  }
  std::printf("\nG-line barrier + GLocks: synchronization leaves the "
              "coherence fabric entirely (paper [22] + this paper).\n");
  return 0;
}
