// google-benchmark microbenchmarks of the simulator's own components:
// how fast the host machine simulates routers, cache operations, G-line
// protocol rounds, and whole small CMPs. These guard against performance
// regressions in the simulator itself (wall-clock per simulated cycle).
#include <benchmark/benchmark.h>

#include <cmath>

#include "core/thread.hpp"
#include "gline/glock_unit.hpp"
#include "harness/runner.hpp"
#include "noc/mesh.hpp"
#include "workloads/micro.hpp"

namespace {

using namespace glocks;

void BM_MeshIdleTick(benchmark::State& state) {
  const auto tiles = static_cast<std::uint32_t>(state.range(0));
  const auto width =
      static_cast<std::uint32_t>(std::lround(std::sqrt(tiles)));
  noc::Mesh mesh(tiles, width, NocConfig{});
  Cycle now = 0;
  for (auto _ : state) {
    mesh.tick(now++);
  }
  state.SetItemsProcessed(state.iterations() * tiles);
}
BENCHMARK(BM_MeshIdleTick)->Arg(16)->Arg(36)->Arg(64);

void BM_MeshPingTraffic(benchmark::State& state) {
  noc::Mesh mesh(36, 6, NocConfig{});
  std::uint64_t delivered = 0;
  mesh.set_sink(35, [&](noc::Packet&&) { ++delivered; });
  Cycle now = 0;
  for (auto _ : state) {
    mesh.send(0, 35, noc::MsgClass::kRequest, 8, now);
    // Drain: corner-to-corner is 10 hops of 4 cycles plus ejection.
    for (int i = 0; i < 48; ++i) mesh.tick(now++);
  }
  benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_MeshPingTraffic);

void BM_GlockUnitUncontendedRound(benchmark::State& state) {
  // One core requests, is granted, and releases, repeatedly.
  std::vector<core::LockRegisters> regs(9, core::LockRegisters(1));
  std::vector<core::LockRegisters*> reg_ptrs;
  for (auto& r : regs) reg_ptrs.push_back(&r);
  gline::GlockUnit unit(0, 9, 3, 1, reg_ptrs);
  Cycle now = 0;
  for (auto _ : state) {
    regs[4].req[0] = true;
    while (regs[4].req[0]) unit.tick(now++);
    regs[4].rel[0] = true;
    while (regs[4].rel[0]) unit.tick(now++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GlockUnitUncontendedRound);

void BM_FullSctrRun(benchmark::State& state) {
  const auto cores = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    workloads::MicroParams p;
    p.total_iterations = 64;
    workloads::SingleCounter wl(p);
    harness::RunConfig cfg;
    cfg.cmp.num_cores = cores;
    cfg.policy.highly_contended = locks::LockKind::kGlock;
    const auto r = harness::run_workload(wl, cfg);
    benchmark::DoNotOptimize(r.cycles);
    state.counters["sim_cycles"] = static_cast<double>(r.cycles);
  }
}
BENCHMARK(BM_FullSctrRun)->Arg(9)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
