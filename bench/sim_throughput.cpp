// Simulator-throughput benchmark: times the fig08/fig09 grid (every
// registry workload under MCS and GLock at 32 cores) under the serial
// tick-everything kernel and the event-driven kernel, checks the two
// agree on every headline metric, and reports the wall-clock speedup.
//
// A second section measures shard scaling: SCTR and MCTR under GLock on
// a large machine (--shard-cores, default 256 — sharding pays off when
// there are many tiles per host thread) across --shards {1, 2, 4, 8},
// checking every count is bit-identical to the serial scan and
// reporting wall-clock speedups relative to it. A third section runs
// the same 4-shard machine under each tile->shard ownership map (block,
// stripe, quad, profile), checking bit-identity again and reporting
// each map's wall time and per-shard busy-ns imbalance ratio — the
// number the profile balancer exists to shrink. On hosts with fewer
// hardware threads than shards the numbers degrade gracefully (workers
// time-slice); the JSON flags that with "shard_numbers_advisory" and
// scripts/bench_throughput.sh only gates the speedup when the host has
// the parallelism to deliver one.
//
//   sim_throughput [--scale X] [--cores N] [--out PATH]
//                  [--shard-cores N] [--shard-scale X]
//
// Emits BENCH_sim_throughput.json (or --out) with both modes' SimPerf
// payloads plus the speedup; scripts/bench_throughput.sh and the CI
// perf-smoke job compare that file against the committed baseline with a
// generous tolerance. Runs are strictly sequential so the wall times are
// not polluted by sibling simulations competing for cores (the shard
// section's workers are the one deliberate exception — host parallelism
// is exactly what it measures).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.hpp"
#include "perf/perf.hpp"

namespace {

using namespace glocks;

harness::RunResult run_point(const std::string& workload,
                             locks::LockKind hc, std::uint32_t cores,
                             double scale, EngineMode mode,
                             std::uint32_t shards = 1,
                             ShardMapPolicy map = ShardMapPolicy::kBlock) {
  auto wl = workloads::make_workload(workload, scale);
  harness::RunConfig cfg = bench::paper_config(hc);
  cfg.cmp.num_cores = cores;
  cfg.cmp.engine_mode = mode;
  cfg.cmp.num_shards = shards;
  cfg.cmp.shard_map = map;
  // Past a 7x7 mesh the flat single-cycle G-line layout is out of reach
  // (max_transmitters_per_line); the big shard-scaling machine uses the
  // Section V hierarchical network, as the 256-core tests do.
  if (cores > 49) cfg.cmp.gline.hierarchical = true;
  return harness::run_workload(*wl, cfg);
}

/// The metrics the two kernels must agree on exactly. The full
/// field-by-field contract lives in tests/engine_event_test.cpp; this is
/// the benchmark's own sanity gate so a throughput number can never be
/// reported for a run that diverged.
bool same_results(const harness::RunResult& a,
                  const harness::RunResult& b) {
  return a.cycles == b.cycles && a.uops == b.uops &&
         a.gline_spin_cycles == b.gline_spin_cycles &&
         a.category_cycles == b.category_cycles;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  std::uint32_t cores = 32;
  std::uint32_t shard_cores = 256;
  double shard_scale = 0.25;
  std::string out_path = "BENCH_sim_throughput.json";
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--scale" && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else if (flag == "--cores" && i + 1 < argc) {
      cores = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (flag == "--shard-cores" && i + 1 < argc) {
      shard_cores = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (flag == "--shard-scale" && i + 1 < argc) {
      shard_scale = std::atof(argv[++i]);
    } else if (flag == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: sim_throughput [--scale X] [--cores N] "
                   "[--shard-cores N] [--shard-scale X] [--out PATH]\n");
      return 2;
    }
  }

  bench::print_header(
      "Simulator throughput: event-driven kernel vs serial reference");
  std::printf("grid: every registry workload x {MCS, GLock} at %u cores, "
              "scale %.2f\n\n", cores, scale);

  const auto& reg = workloads::registry();
  const locks::LockKind kinds[] = {locks::LockKind::kMcs,
                                   locks::LockKind::kGlock};

  perf::SimPerf serial_agg, event_agg;
  bool identical = true;
  std::printf("%-7s %-5s %10s %10s %8s %6s %8s %9s  %s\n", "bench", "lock",
              "serial_s", "event_s", "speedup", "xhit%", "poolhw",
              "reuse%", "agree");
  for (const auto& entry : reg) {
    for (const auto hc : kinds) {
      const auto s =
          run_point(entry.name, hc, cores, scale, EngineMode::kSerial);
      const auto e = run_point(entry.name, hc, cores, scale,
                               EngineMode::kEventDriven);
      serial_agg.add(s.perf);
      event_agg.add(e.perf);
      const bool agree = same_results(s, e);
      identical = identical && agree;
      const auto& m = e.perf.msg;
      const double reuse_pct =
          m.pool_acquires > 0
              ? 100.0 * static_cast<double>(m.pool_reuses) /
                    static_cast<double>(m.pool_acquires)
              : 0.0;
      std::printf("%-7s %-5s %10.3f %10.3f %7.2fx %5.1f%% %8llu %8.1f%%  "
                  "%s\n",
                  entry.name.c_str(),
                  hc == locks::LockKind::kMcs ? "MCS" : "GL",
                  s.perf.wall_seconds, e.perf.wall_seconds,
                  s.perf.wall_seconds /
                      (e.perf.wall_seconds > 0 ? e.perf.wall_seconds
                                               : 1e-9),
                  100.0 * m.express_hit_rate(),
                  static_cast<unsigned long long>(m.pool_high_water),
                  reuse_pct, agree ? "yes" : "NO — RESULTS DIVERGED");
    }
  }

  // Shard scaling: the same machine sharded across host threads must
  // produce the same bits faster. Wall time per shard count sums the
  // SCTR and MCTR GLock runs on the big machine; speedups are relative
  // to the one-shard (serial-scan) run of this same section.
  const unsigned host_threads = std::thread::hardware_concurrency();
  const std::uint32_t shard_counts[] = {1, 2, 4, 8};
  double shard_wall[4] = {0, 0, 0, 0};
  bool shard_identical = true;
  std::printf("\nshard scaling: {SCTR, MCTR} x GLock at %u cores, scale "
              "%.2f (host threads: %u)\n",
              shard_cores, shard_scale, host_threads);
  std::printf("%-7s %10s %8s  %s\n", "shards", "wall_s", "speedup",
              "agree");
  std::vector<harness::RunResult> shard_base;
  for (std::size_t si = 0; si < std::size(shard_counts); ++si) {
    bool agree = true;
    std::size_t wi = 0;
    for (const char* wl : {"SCTR", "MCTR"}) {
      const auto r = run_point(wl, locks::LockKind::kGlock, shard_cores,
                               shard_scale, EngineMode::kEventDriven,
                               shard_counts[si]);
      shard_wall[si] += r.perf.wall_seconds;
      if (si == 0) {
        shard_base.push_back(r);
      } else {
        agree = agree && same_results(shard_base[wi], r);
      }
      ++wi;
    }
    shard_identical = shard_identical && agree;
    std::printf("%-7u %10.3f %7.2fx  %s\n", shard_counts[si],
                shard_wall[si],
                shard_wall[0] / (shard_wall[si] > 0 ? shard_wall[si] : 1e-9),
                agree ? "yes" : "NO — RESULTS DIVERGED");
  }
  identical = identical && shard_identical;

  // Ownership-map comparison: the same 4-shard machine under each
  // tile->shard map policy. Bits must match the serial scan under every
  // map; the busy-ns imbalance ratio (max/mean across shards) is what
  // the profile balancer exists to shrink, so the perf-smoke gate
  // compares profile's against block's.
  constexpr std::uint32_t kMapShards = 4;
  constexpr ShardMapPolicy kMaps[] = {
      ShardMapPolicy::kBlock, ShardMapPolicy::kStripe,
      ShardMapPolicy::kQuad, ShardMapPolicy::kProfile};
  constexpr const char* kMapNames[] = {"block", "stripe", "quad",
                                       "profile"};
  double map_wall[4] = {0, 0, 0, 0};
  double map_imbalance[4] = {0, 0, 0, 0};
  bool map_identical = true;
  std::printf("\nshard maps: {SCTR, MCTR} x GLock at %u cores, %u shards\n",
              shard_cores, kMapShards);
  std::printf("%-8s %10s %10s  %s\n", "map", "wall_s", "imbalance",
              "agree");
  for (std::size_t mi = 0; mi < std::size(kMaps); ++mi) {
    bool agree = true;
    std::vector<std::uint64_t> busy;
    std::size_t wi = 0;
    for (const char* wl : {"SCTR", "MCTR"}) {
      const auto r = run_point(wl, locks::LockKind::kGlock, shard_cores,
                               shard_scale, EngineMode::kEventDriven,
                               kMapShards, kMaps[mi]);
      map_wall[mi] += r.perf.wall_seconds;
      agree = agree && same_results(shard_base[wi], r);
      if (busy.size() < r.perf.shard.shard_busy_ns.size()) {
        busy.resize(r.perf.shard.shard_busy_ns.size(), 0);
      }
      for (std::size_t s = 0; s < r.perf.shard.shard_busy_ns.size(); ++s) {
        busy[s] += r.perf.shard.shard_busy_ns[s];
      }
      ++wi;
    }
    std::uint64_t total = 0, peak = 0;
    for (const std::uint64_t b : busy) {
      total += b;
      if (b > peak) peak = b;
    }
    map_imbalance[mi] =
        total > 0 ? static_cast<double>(peak) * busy.size() /
                        static_cast<double>(total)
                  : 0.0;
    map_identical = map_identical && agree;
    std::printf("%-8s %10.3f %9.3fx  %s\n", kMapNames[mi], map_wall[mi],
                map_imbalance[mi], agree ? "yes" : "NO — RESULTS DIVERGED");
  }
  identical = identical && map_identical;

  const double speedup =
      event_agg.wall_seconds > 0
          ? serial_agg.wall_seconds / event_agg.wall_seconds
          : 0.0;
  std::printf("\nserial: %s", serial_agg.summary().c_str());
  std::printf("event:  %s", event_agg.summary().c_str());
  std::printf("\naggregate speedup: %.2fx  (skip fraction %.1f%%)\n",
              speedup, 100.0 * event_agg.skip_fraction());
  if (!identical) {
    std::printf("ERROR: event kernel diverged from the serial "
                "reference; throughput numbers are void.\n");
  }

  std::ofstream json(out_path);
  json.precision(6);
  json << "{\n";
  json << "  \"bench\": \"sim_throughput\",\n";
  // v2: SimPerf payloads carry shard_exec + aggregated slot totals with
  // the ten hottest slots instead of the full per-slot array.
  json << "  \"format_version\": 2,\n";
  json << "  \"cores\": " << cores << ",\n";
  json << "  \"scale\": " << scale << ",\n";
  json << "  \"grid_points\": " << reg.size() * 2 << ",\n";
  json << "  \"identical\": " << (identical ? "true" : "false") << ",\n";
  json << "  \"speedup\": " << speedup << ",\n";
  // Top-level copy of the event kernel's express hit rate: placed before
  // the nested SimPerf payloads so scripts/bench_throughput.sh's
  // first-match json_field extraction reads this one.
  json << "  \"express_hit_rate\": " << event_agg.msg.express_hit_rate()
       << ",\n";
  // Shard-scaling block: host_threads records what parallelism the
  // measuring machine actually had, so a reader (and the perf-smoke
  // gate) can judge whether the speedups mean anything.
  json << "  \"host_threads\": " << host_threads << ",\n";
  json << "  \"shard_cores\": " << shard_cores << ",\n";
  json << "  \"shard_scale\": " << shard_scale << ",\n";
  json << "  \"shard_identical\": " << (shard_identical ? "true" : "false")
       << ",\n";
  // True when the host lacks the parallelism (2x the shard count) to
  // make the sharded wall times meaningful — workers time-slice, so the
  // speedup and imbalance numbers are advisory, not gateable.
  json << "  \"shard_numbers_advisory\": "
       << (host_threads < 2 * kMapShards ? "true" : "false") << ",\n";
  for (std::size_t si = 1; si < std::size(shard_counts); ++si) {
    json << "  \"shard_speedup_" << shard_counts[si] << "\": "
         << (shard_wall[si] > 0 ? shard_wall[0] / shard_wall[si] : 0.0)
         << ",\n";
  }
  json << "  \"map_identical\": " << (map_identical ? "true" : "false")
       << ",\n";
  for (std::size_t mi = 0; mi < std::size(kMaps); ++mi) {
    json << "  \"map_wall_s_" << kMapNames[mi] << "\": " << map_wall[mi]
         << ",\n";
    json << "  \"imbalance_" << kMapNames[mi] << "\": " << map_imbalance[mi]
         << ",\n";
  }
  json << "  \"serial\": ";
  serial_agg.write_json(json, 2);
  json << ",\n  \"event\": ";
  event_agg.write_json(json, 2);
  json << "\n}\n";
  std::printf("wrote %s\n", out_path.c_str());

  return identical ? 0 : 1;
}
