// Simulator-throughput benchmark: times the fig08/fig09 grid (every
// registry workload under MCS and GLock at 32 cores) under the serial
// tick-everything kernel and the event-driven kernel, checks the two
// agree on every headline metric, and reports the wall-clock speedup.
//
//   sim_throughput [--scale X] [--cores N] [--out PATH]
//
// Emits BENCH_sim_throughput.json (or --out) with both modes' SimPerf
// payloads plus the speedup; scripts/bench_throughput.sh and the CI
// perf-smoke job compare that file against the committed baseline with a
// generous tolerance. Runs are strictly sequential so the wall times are
// not polluted by sibling simulations competing for cores.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "perf/perf.hpp"

namespace {

using namespace glocks;

harness::RunResult run_point(const std::string& workload,
                             locks::LockKind hc, std::uint32_t cores,
                             double scale, EngineMode mode) {
  auto wl = workloads::make_workload(workload, scale);
  harness::RunConfig cfg = bench::paper_config(hc);
  cfg.cmp.num_cores = cores;
  cfg.cmp.engine_mode = mode;
  return harness::run_workload(*wl, cfg);
}

/// The metrics the two kernels must agree on exactly. The full
/// field-by-field contract lives in tests/engine_event_test.cpp; this is
/// the benchmark's own sanity gate so a throughput number can never be
/// reported for a run that diverged.
bool same_results(const harness::RunResult& a,
                  const harness::RunResult& b) {
  return a.cycles == b.cycles && a.uops == b.uops &&
         a.gline_spin_cycles == b.gline_spin_cycles &&
         a.category_cycles == b.category_cycles;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  std::uint32_t cores = 32;
  std::string out_path = "BENCH_sim_throughput.json";
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--scale" && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else if (flag == "--cores" && i + 1 < argc) {
      cores = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (flag == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: sim_throughput [--scale X] [--cores N] "
                   "[--out PATH]\n");
      return 2;
    }
  }

  bench::print_header(
      "Simulator throughput: event-driven kernel vs serial reference");
  std::printf("grid: every registry workload x {MCS, GLock} at %u cores, "
              "scale %.2f\n\n", cores, scale);

  const auto& reg = workloads::registry();
  const locks::LockKind kinds[] = {locks::LockKind::kMcs,
                                   locks::LockKind::kGlock};

  perf::SimPerf serial_agg, event_agg;
  bool identical = true;
  std::printf("%-7s %-5s %10s %10s %8s %6s %8s %9s  %s\n", "bench", "lock",
              "serial_s", "event_s", "speedup", "xhit%", "poolhw",
              "reuse%", "agree");
  for (const auto& entry : reg) {
    for (const auto hc : kinds) {
      const auto s =
          run_point(entry.name, hc, cores, scale, EngineMode::kSerial);
      const auto e = run_point(entry.name, hc, cores, scale,
                               EngineMode::kEventDriven);
      serial_agg.add(s.perf);
      event_agg.add(e.perf);
      const bool agree = same_results(s, e);
      identical = identical && agree;
      const auto& m = e.perf.msg;
      const double reuse_pct =
          m.pool_acquires > 0
              ? 100.0 * static_cast<double>(m.pool_reuses) /
                    static_cast<double>(m.pool_acquires)
              : 0.0;
      std::printf("%-7s %-5s %10.3f %10.3f %7.2fx %5.1f%% %8llu %8.1f%%  "
                  "%s\n",
                  entry.name.c_str(),
                  hc == locks::LockKind::kMcs ? "MCS" : "GL",
                  s.perf.wall_seconds, e.perf.wall_seconds,
                  s.perf.wall_seconds /
                      (e.perf.wall_seconds > 0 ? e.perf.wall_seconds
                                               : 1e-9),
                  100.0 * m.express_hit_rate(),
                  static_cast<unsigned long long>(m.pool_high_water),
                  reuse_pct, agree ? "yes" : "NO — RESULTS DIVERGED");
    }
  }

  const double speedup =
      event_agg.wall_seconds > 0
          ? serial_agg.wall_seconds / event_agg.wall_seconds
          : 0.0;
  std::printf("\nserial: %s", serial_agg.summary().c_str());
  std::printf("event:  %s", event_agg.summary().c_str());
  std::printf("\naggregate speedup: %.2fx  (skip fraction %.1f%%)\n",
              speedup, 100.0 * event_agg.skip_fraction());
  if (!identical) {
    std::printf("ERROR: event kernel diverged from the serial "
                "reference; throughput numbers are void.\n");
  }

  std::ofstream json(out_path);
  json.precision(6);
  json << "{\n";
  json << "  \"bench\": \"sim_throughput\",\n";
  json << "  \"cores\": " << cores << ",\n";
  json << "  \"scale\": " << scale << ",\n";
  json << "  \"grid_points\": " << reg.size() * 2 << ",\n";
  json << "  \"identical\": " << (identical ? "true" : "false") << ",\n";
  json << "  \"speedup\": " << speedup << ",\n";
  // Top-level copy of the event kernel's express hit rate: placed before
  // the nested SimPerf payloads so scripts/bench_throughput.sh's
  // first-match json_field extraction reads this one.
  json << "  \"express_hit_rate\": " << event_agg.msg.express_hit_rate()
       << ",\n";
  json << "  \"serial\": ";
  serial_agg.write_json(json, 2);
  json << ",\n  \"event\": ";
  event_agg.write_json(json, 2);
  json << "\n}\n";
  std::printf("wrote %s\n", out_path.c_str());

  return identical ? 0 : 1;
}
