// Ablation: the paper's future-work scaling path (Section V) — longer
// G-line latencies to reach larger chips. Runs SCTR under GLocks with
// signal latencies 1/2/4/8 at 32 cores, and demonstrates an 81-core CMP
// (9x9 mesh, beyond the single-cycle 7x7 reach) enabled by 2-cycle
// G-lines. Also ablates the grant policy's fairness cost indirectly via
// the round-robin pass statistics.
#include <cstdio>

#include "bench_support.hpp"
#include "workloads/micro.hpp"

int main() {
  using namespace glocks;
  bench::print_header("Ablation: G-line signal latency scaling "
                      "(SCTR under GLocks)");

  std::printf("%-24s %10s %8s   (MCS reference shown last)\n", "config",
              "cycles", "norm");
  double base = 0;
  for (const Cycle lat : {1u, 2u, 4u, 8u}) {
    workloads::SingleCounter wl;
    harness::RunConfig cfg = bench::paper_config(locks::LockKind::kGlock);
    cfg.cmp.gline.signal_latency = lat;
    const auto r = harness::run_workload(wl, cfg);
    if (base == 0) base = static_cast<double>(r.cycles);
    std::printf("32 cores, latency %-7llu %10llu %8.3f\n",
                static_cast<unsigned long long>(lat),
                static_cast<unsigned long long>(r.cycles),
                static_cast<double>(r.cycles) / base);
  }
  {
    const auto mcs = bench::run("SCTR", locks::LockKind::kMcs);
    std::printf("32 cores, MCS            %10llu %8.3f\n",
                static_cast<unsigned long long>(mcs.cycles),
                static_cast<double>(mcs.cycles) / base);
  }

  std::printf("\n--- beyond the 7x7 single-cycle reach ---\n");
  std::printf("(Section V offers two scaling paths: longer-latency wires "
              "or a hierarchical G-line network)\n");
  for (const std::uint32_t cores : {49u, 81u, 144u}) {
    for (const char* variant : {"mcs", "longwire", "hier"}) {
      workloads::MicroParams p;
      p.total_iterations = 1000;
      workloads::SingleCounter wl(p);
      harness::RunConfig cfg = bench::paper_config(
          std::string(variant) == "mcs" ? locks::LockKind::kMcs
                                        : locks::LockKind::kGlock);
      cfg.cmp.num_cores = cores;
      if (std::string(variant) == "hier") {
        cfg.cmp.gline.hierarchical = true;
      } else {
        // Stretch the signal latency until the wires reach across (the
        // lock hardware is built even when MCS does not exercise it).
        cfg.cmp.gline.signal_latency =
            cores <= 49 ? 1 : (cores <= 81 ? 2 : 3);
      }
      const auto r = harness::run_workload(wl, cfg);
      std::printf("%3u cores, %-9s (latency %llu%s): %10llu cycles\n",
                  cores, variant,
                  static_cast<unsigned long long>(
                      cfg.cmp.gline.signal_latency),
                  cfg.cmp.gline.hierarchical ? ", tree" : "",
                  static_cast<unsigned long long>(r.cycles));
    }
  }
  return 0;
}
