// Handoff-latency distribution: the paper's "lightning-fast lock
// acquisition" claim, measured per acquire. Runs the SCTR hammer under
// each lock kind with the event tracer attached, extracts every acquire's
// start-to-grant latency, and prints percentiles. Under saturation the
// p50 approximates one full rotation wait; the *minimum* approximates the
// raw mechanism cost (paper Table I: 2-4 cycles + spin pickup for
// GLocks).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "trace/tracer.hpp"
#include "workloads/micro.hpp"

namespace {

using namespace glocks;

struct Dist {
  Cycle min = 0, p50 = 0, p90 = 0, p99 = 0, max = 0;
};

Dist acquire_latencies(locks::LockKind kind) {
  workloads::MicroParams p;
  p.total_iterations = 640;
  workloads::SingleCounter wl(p);
  harness::RunConfig cfg = bench::paper_config(kind);
  trace::Tracer tracer;
  cfg.tracer = &tracer;
  harness::run_workload(wl, cfg);

  std::vector<Cycle> lat;
  for (const auto& e : tracer.events()) {
    if (e.name.rfind("acquire", 0) == 0) lat.push_back(e.end - e.begin);
  }
  std::sort(lat.begin(), lat.end());
  auto pct = [&](double q) {
    return lat[static_cast<std::size_t>(q * (lat.size() - 1))];
  };
  return Dist{lat.front(), pct(0.50), pct(0.90), pct(0.99), lat.back()};
}

}  // namespace

int main() {
  bench::print_header("Acquire latency distribution under saturation "
                      "(SCTR, 32 cores, cycles per acquire)");
  std::printf("%-14s %8s %8s %8s %8s %8s\n", "lock", "min", "p50", "p90",
              "p99", "max");
  for (const auto kind :
       {locks::LockKind::kTatas, locks::LockKind::kTicket,
        locks::LockKind::kMcs, locks::LockKind::kClh, locks::LockKind::kSb,
        locks::LockKind::kQolb, locks::LockKind::kGlock,
        locks::LockKind::kIdeal}) {
    const Dist d = acquire_latencies(kind);
    std::printf("%-14s %8llu %8llu %8llu %8llu %8llu\n",
                std::string(locks::to_string(kind)).c_str(),
                static_cast<unsigned long long>(d.min),
                static_cast<unsigned long long>(d.p50),
                static_cast<unsigned long long>(d.p90),
                static_cast<unsigned long long>(d.p99),
                static_cast<unsigned long long>(d.max));
  }
  std::printf("\nmin = raw mechanism cost (uncontended tail of the run); "
              "p50/p90 = queueing under saturation;\nfair locks have tight "
              "distributions, spin locks a huge p99/max (the starved "
              "stragglers).\n");
  return 0;
}
