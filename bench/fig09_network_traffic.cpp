// Reproduces paper Figure 9: total main-data-network traffic (bytes
// through all switches) normalized to MCS, broken down into Coherence /
// Request / Reply message classes.
#include <cstdio>
#include <vector>

#include "bench_support.hpp"

int main() {
  using namespace glocks;
  bench::print_header(
      "Figure 9: normalized network traffic (GL vs MCS, 32 cores)");
  std::printf("%-7s %-4s %12s %8s  %8s %8s %8s\n", "bench", "cfg", "bytes",
              "norm", "coher", "request", "reply");

  const auto pairs = bench::run_registry_pairs();

  std::vector<double> micro_norm, app_norm;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto& entry = workloads::registry()[i];
    const auto& [mcs, gl] = pairs[i];
    const double base = static_cast<double>(mcs.traffic.total_bytes());
    for (const auto* r : {&mcs, &gl}) {
      const auto& tr = r->traffic;
      std::printf("%-7s %-4s %12llu %8.3f  %8.3f %8.3f %8.3f\n",
                  entry.name.c_str(), r == &mcs ? "MCS" : "GL",
                  static_cast<unsigned long long>(tr.total_bytes()),
                  static_cast<double>(tr.total_bytes()) / base,
                  static_cast<double>(
                      tr.bytes(noc::MsgClass::kCoherence)) / base,
                  static_cast<double>(tr.bytes(noc::MsgClass::kRequest)) /
                      base,
                  static_cast<double>(tr.bytes(noc::MsgClass::kReply)) /
                      base);
    }
    const double norm = static_cast<double>(gl.traffic.total_bytes()) / base;
    (entry.is_microbenchmark ? micro_norm : app_norm).push_back(norm);
  }

  std::printf("\nAvgM: normalized traffic %.3f (paper: ~0.24, i.e. 76%% "
              "reduction)\n", bench::mean(micro_norm));
  std::printf("AvgA: normalized traffic %.3f (paper: ~0.77, i.e. 23%% "
              "reduction)\n", bench::mean(app_norm));
  return 0;
}
