// Prints paper Table II (the simulated CMP baseline configuration) and
// Table III (benchmark configuration and lock-related characteristics,
// with the lock counts measured from an actual run of each benchmark).
#include <cstdio>

#include "bench_support.hpp"

int main() {
  using namespace glocks;
  bench::print_header("Table II: CMP baseline configuration");
  CmpConfig cfg;
  std::printf("%s", cfg.to_table().c_str());

  bench::print_header("Table III: benchmark configuration and "
                      "lock-related characteristics");
  std::printf("%-9s %-28s %6s %9s %s\n", "bench", "input size", "locks",
              "H-C locks", "access pattern");
  for (const auto& entry : workloads::registry()) {
    auto wl = workloads::make_workload(entry.name);
    std::printf("%-9s %-28s %6u %9u %s\n", entry.name.c_str(),
                entry.input_size.c_str(), wl->num_locks(),
                wl->num_hc_locks(), entry.access_pattern.c_str());
  }
  return 0;
}
