// Contention explorer: sweeps the degree of lock contention (number of
// cores hammering one counter) and shows where each lock implementation
// wins — the simple-vs-scalable trade-off of paper Section II, and the
// point of GLocks: fastest at both ends.
//
// Usage: contention_explorer [iters-per-config]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "workloads/micro.hpp"

int main(int argc, char** argv) {
  using namespace glocks;
  const std::uint64_t iters =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 256;

  const std::vector<locks::LockKind> kinds = {
      locks::LockKind::kTatas, locks::LockKind::kTicket,
      locks::LockKind::kMcs, locks::LockKind::kGlock};

  std::printf("SCTR acquire+release cost per critical section (cycles), "
              "by core count\n\n%-8s", "cores");
  for (auto k : kinds) {
    std::printf("%14s", std::string(locks::to_string(k)).c_str());
  }
  std::printf("\n");

  for (const std::uint32_t cores : {1u, 2u, 4u, 9u, 16u, 25u, 32u}) {
    std::printf("%-8u", cores);
    for (const auto kind : kinds) {
      workloads::MicroParams p;
      p.total_iterations = iters;
      workloads::SingleCounter wl(p);
      harness::RunConfig cfg;
      cfg.cmp.num_cores = cores;
      cfg.policy.highly_contended = kind;
      const auto r = harness::run_workload(wl, cfg);
      // Critical sections serialize, so cycles/iteration approximates the
      // end-to-end cost of one lock handoff + counter update.
      std::printf("%14.1f",
                  static_cast<double>(r.cycles) / static_cast<double>(iters));
    }
    std::printf("\n");
  }
  std::printf("\nLower is better. TATAS degrades with contention; queue "
              "locks flatten; GLocks stay near the data-movement floor.\n");
  return 0;
}
