// Writing your own workload against the public API.
//
// This example builds a small bank-transfer benchmark from scratch: N
// accounts protected by one highly-contended lock, random transfers, a
// final audit that the total balance is conserved. It shows the full
// surface a user touches: Workload, WorkloadContext (heap / locks /
// barriers / rng), ThreadApi micro-ops, and post-run verification.
#include <cstdio>
#include <vector>

#include "harness/runner.hpp"

namespace {

using namespace glocks;
using core::Task;
using core::ThreadApi;

class BankTransfers final : public harness::Workload {
 public:
  static constexpr std::uint32_t kAccounts = 24;
  static constexpr Word kInitialBalance = 1000;
  static constexpr int kTransfersPerThread = 40;

  std::string name() const override { return "bank-transfers"; }
  std::uint32_t num_locks() const override { return 1; }
  std::uint32_t num_hc_locks() const override { return 1; }

  void setup(harness::WorkloadContext& ctx) override {
    accounts_ = ctx.heap().alloc_lines(kAccounts);  // one line each
    for (std::uint32_t i = 0; i < kAccounts; ++i) {
      ctx.memory().poke(account(i), kInitialBalance);
    }
    ledger_lock_ = &ctx.make_lock("ledger", /*highly_contended=*/true);
    done_barrier_ = &ctx.make_tree_barrier();
    // Pre-plan the transfers so the run is deterministic per seed.
    plans_.assign(ctx.num_threads(), {});
    for (auto& plan : plans_) {
      for (int i = 0; i < kTransfersPerThread; ++i) {
        plan.push_back(Transfer{
            static_cast<std::uint32_t>(ctx.rng().below(kAccounts)),
            static_cast<std::uint32_t>(ctx.rng().below(kAccounts)),
            1 + ctx.rng().below(50)});
      }
    }
  }

  core::Task<void> thread_body(ThreadApi& t,
                               harness::WorkloadContext&) override {
    return run_thread(t, this);
  }

  void verify(harness::WorkloadContext& ctx) override {
    Word total = 0;
    for (std::uint32_t i = 0; i < kAccounts; ++i) {
      total += ctx.peek(account(i));
    }
    GLOCKS_CHECK(total == Word{kAccounts} * kInitialBalance,
                 "money was created or destroyed: " << total);
  }

 private:
  struct Transfer {
    std::uint32_t from, to;
    Word amount;
  };

  Addr account(std::uint32_t i) const {
    return accounts_ + Addr{i} * kLineBytes;
  }

  // A free-standing coroutine (not a capturing lambda — see CP.51).
  static Task<void> run_thread(ThreadApi& t, BankTransfers* self) {
    for (const auto& tr : self->plans_[t.thread_id()]) {
      if (tr.from == tr.to) continue;  // a self-transfer is a no-op
      co_await self->ledger_lock_->acquire(t);
      const Word from = co_await t.load(self->account(tr.from));
      if (from >= tr.amount) {
        const Word to = co_await t.load(self->account(tr.to));
        co_await t.store(self->account(tr.from), from - tr.amount);
        co_await t.store(self->account(tr.to), to + tr.amount);
      }
      co_await self->ledger_lock_->release(t);
      co_await t.compute(10);  // think time between transfers
    }
    co_await self->done_barrier_->await(t);
  }

  Addr accounts_ = 0;
  locks::Lock* ledger_lock_ = nullptr;
  sync::Barrier* done_barrier_ = nullptr;
  std::vector<std::vector<Transfer>> plans_;
};

}  // namespace

int main() {
  BankTransfers wl;
  harness::RunConfig cfg;  // 32 cores, Table II machine

  std::printf("bank-transfers on a 32-core CMP\n\n");
  for (const auto kind :
       {locks::LockKind::kTatas, locks::LockKind::kMcs,
        locks::LockKind::kGlock}) {
    cfg.policy.highly_contended = kind;
    const auto r = harness::run_workload(wl, cfg);
    std::printf("%-8s %8llu cycles   lock fraction %.2f   traffic %llu B\n",
                std::string(locks::to_string(kind)).c_str(),
                static_cast<unsigned long long>(r.cycles),
                r.lock_fraction(),
                static_cast<unsigned long long>(r.traffic.total_bytes()));
  }
  std::printf("\n(audit passed: total balance conserved under every lock)\n");
  return 0;
}
