// Lock anatomy: dissects a single critical section under each lock
// implementation, printing the protocol-level events it generates —
// coherence messages, network bytes, G-line signals, directory work —
// for two regimes: uncontended (1 of 9 cores) and fully contended
// (9 of 9 cores). A guided tour of *why* the Figure 8/9 numbers happen.
#include <cstdio>
#include <string>

#include "harness/runner.hpp"
#include "workloads/micro.hpp"

namespace {

void show(const char* title, const glocks::harness::RunResult& r,
          std::uint64_t css) {
  using u = unsigned long long;
  std::printf("%-14s per-CS: %7.1f cycles | L1 misses %5.1f | inv %4.1f | "
              "c2c fwd %4.1f | mesh bytes %7.1f | G-signals %4.1f\n",
              title, static_cast<double>(r.cycles) / css,
              static_cast<double>(r.l1.misses) / css,
              static_cast<double>(r.dir.invalidations_sent) / css,
              static_cast<double>(r.dir.forwards_sent) / css,
              static_cast<double>(r.traffic.total_bytes()) / css,
              static_cast<double>(r.gline.signals) / css);
  (void)sizeof(u);
}

}  // namespace

int main() {
  using namespace glocks;
  std::printf("What one critical section costs, by lock kind "
              "(SCTR, 9-core CMP)\n");

  for (const bool contended : {false, true}) {
    std::printf("\n--- %s ---\n",
                contended ? "contended: all 9 cores hammering"
                          : "uncontended: single thread");
    for (const auto kind :
         {locks::LockKind::kSimple, locks::LockKind::kTatas,
          locks::LockKind::kTicket, locks::LockKind::kArray,
          locks::LockKind::kMcs, locks::LockKind::kGlock,
          locks::LockKind::kIdeal}) {
      workloads::MicroParams p;
      p.total_iterations = 270;
      workloads::SingleCounter wl(p);
      harness::RunConfig cfg;
      cfg.cmp.num_cores = contended ? 9 : 1;
      cfg.policy.highly_contended = kind;
      const auto r = harness::run_workload(wl, cfg);
      show(std::string(locks::to_string(kind)).c_str(), r,
           p.total_iterations);
    }
  }
  std::printf(
      "\nReading guide: under contention the spin locks turn every release\n"
      "into an invalidation storm (inv/CS grows with cores); the queue\n"
      "locks bound it to ~1 handoff; GLocks remove lock messages from the\n"
      "mesh entirely — the residual misses are the shared counter itself.\n");
  return 0;
}
