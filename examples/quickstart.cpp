// Quickstart: simulate the paper's 32-core CMP running the SCTR
// microbenchmark, once with MCS locks and once with hardware GLocks, and
// print the headline comparison (execution time, network traffic, ED2P).
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "harness/runner.hpp"
#include "workloads/micro.hpp"

int main() {
  using namespace glocks;

  harness::RunConfig cfg;         // Table II defaults: 32 cores, 2D mesh
  workloads::MicroParams params;  // Table III defaults: 1000 iterations
  workloads::SingleCounter sctr(params);

  cfg.policy.highly_contended = locks::LockKind::kMcs;
  const auto mcs = harness::run_workload(sctr, cfg);

  cfg.policy.highly_contended = locks::LockKind::kGlock;
  const auto gl = harness::run_workload(sctr, cfg);

  std::printf("SCTR on a %u-core CMP (%llu critical sections)\n\n",
              cfg.cmp.num_cores,
              static_cast<unsigned long long>(params.total_iterations));
  std::printf("%-28s %15s %15s\n", "metric", "MCS", "GLocks");
  std::printf("%-28s %15llu %15llu\n", "execution time (cycles)",
              static_cast<unsigned long long>(mcs.cycles),
              static_cast<unsigned long long>(gl.cycles));
  std::printf("%-28s %15llu %15llu\n", "network traffic (bytes)",
              static_cast<unsigned long long>(mcs.traffic.total_bytes()),
              static_cast<unsigned long long>(gl.traffic.total_bytes()));
  std::printf("%-28s %15.3f %15.3f\n", "lock time fraction",
              mcs.lock_fraction(), gl.lock_fraction());
  std::printf("%-28s %15.2f %15.2f\n", "energy (uJ)",
              mcs.energy.total() / 1e6, gl.energy.total() / 1e6);
  std::printf("\nGLocks vs MCS: %.1f%% less time, %.1f%% less traffic, "
              "%.1f%% less ED2P\n",
              100.0 * (1.0 - static_cast<double>(gl.cycles) /
                                 static_cast<double>(mcs.cycles)),
              100.0 * (1.0 - static_cast<double>(gl.traffic.total_bytes()) /
                                 static_cast<double>(
                                     mcs.traffic.total_bytes())),
              100.0 * (1.0 - gl.ed2p / mcs.ed2p));
  return 0;
}
