// The full tuning workflow a user would follow on their own application:
//
//   1. describe the app's lock behaviour as a trace (here: generated
//      synthetically; normally exported from a profiler),
//   2. let the auto-policy profiler decide which locks deserve the
//      chip's hardware GLocks,
//   3. run the trace under (a) plain MCS, (b) the auto-tuned policy,
//      and compare.
//
// Shows: trace generation/serialization, harness::auto_assign_glocks,
// LockPolicy overrides, and the report API.
#include <cstdio>
#include <memory>
#include <sstream>

#include "harness/auto_policy.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "workloads/trace_replay.hpp"

int main() {
  using namespace glocks;

  // 1. An application profile: 32 threads, 6 locks, 70% of critical
  //    sections hit lock 0 (a classic "one hot lock" application).
  Rng rng(2026);
  const workloads::LockTrace trace =
      workloads::generate_lock_trace(rng, 32, 6, 60, /*hot_fraction=*/0.7);
  std::ostringstream serialized;
  workloads::write_lock_trace(trace, serialized);
  std::printf("application profile: %llu episodes over %u locks "
              "(%zu bytes serialized)\n\n",
              static_cast<unsigned long long>(trace.total_episodes()),
              trace.num_locks, serialized.str().size());

  harness::RunConfig cfg;  // Table II machine

  // 2. Profile + assign.
  const harness::WorkloadFactory factory = [&trace](double) {
    return std::make_unique<workloads::TraceReplay>(trace);
  };
  const auto tuned = harness::auto_assign_glocks(factory, cfg);
  std::printf("measured contention ranking:\n");
  for (const auto& s : tuned.scores) {
    std::printf("  %-10s %10llu contended cycles  share %.2f %s\n",
                s.name.c_str(),
                static_cast<unsigned long long>(s.contended_cycles),
                s.share, s.chosen ? "<- gets a GLock" : "");
  }

  // 3. Compare.
  cfg.policy.highly_contended = locks::LockKind::kMcs;
  cfg.policy.regular = locks::LockKind::kMcs;
  auto wl_mcs = factory(1.0);
  const auto mcs = harness::run_workload(*wl_mcs, cfg);

  cfg.policy = tuned.policy;
  auto wl_tuned = factory(1.0);
  const auto gl = harness::run_workload(*wl_tuned, cfg);

  std::printf("\nall-MCS:    %8llu cycles, %9llu traffic bytes\n",
              static_cast<unsigned long long>(mcs.cycles),
              static_cast<unsigned long long>(mcs.traffic.total_bytes()));
  std::printf("auto-tuned: %8llu cycles, %9llu traffic bytes "
              "(%.1f%% faster)\n",
              static_cast<unsigned long long>(gl.cycles),
              static_cast<unsigned long long>(gl.traffic.total_bytes()),
              100.0 * (1.0 - static_cast<double>(gl.cycles) /
                                 static_cast<double>(mcs.cycles)));
  return 0;
}
